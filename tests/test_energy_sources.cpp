// Tests for the harvesting-source trace registry: golden bitwise stability
// of the canonical solar path (the registry's "solar" source with default
// parameters must reproduce the pre-registry hard-coded trace exactly),
// per-source generator properties, parameter-map validation errors for
// every built-in source, and runtime registration of custom sources.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment_setup.hpp"
#include "energy/ou.hpp"
#include "energy/power_trace.hpp"
#include "energy/rf.hpp"
#include "energy/solar.hpp"
#include "energy/trace_registry.hpp"

namespace {

using namespace imx;

// --- Golden stability of the canonical solar path -------------------------

/// The exact trace construction core::make_paper_setup() hard-coded before
/// label resolution moved onto the registry. The registry's default "solar"
/// source must reproduce it bitwise — this is the contract that keeps every
/// solar-labelled grid's replica-0 output byte-identical across the move.
energy::PowerTrace legacy_paper_trace(const core::SetupConfig& config) {
    energy::SolarConfig solar;
    solar.days = 1.0;
    solar.dt_s = 1.0;
    solar.peak_power_mw = 0.08;
    solar.window_start_hour = solar.sunrise_hour;
    solar.window_end_hour = solar.sunset_hour;
    solar.envelope_exponent = 2.0;
    solar.time_compression =
        (solar.window_end_hour - solar.window_start_hour) * 3600.0 /
        config.duration_s;
    solar.seed = config.trace_seed;
    energy::PowerTrace trace = energy::make_solar_trace(solar);
    trace.rescale_total_energy(config.total_harvest_mj);
    return trace;
}

TEST(TraceRegistryGolden, DefaultSolarSourceIsBitwiseTheLegacyPaperTrace) {
    const core::SetupConfig config;
    const auto legacy = legacy_paper_trace(config);

    energy::TraceSourceContext ctx;
    ctx.duration_s = config.duration_s;
    ctx.dt_s = 1.0;
    ctx.seed = config.trace_seed;
    auto registry = energy::make_trace("solar", ctx, {});
    registry.rescale_total_energy(config.total_harvest_mj);

    ASSERT_EQ(registry.size(), legacy.size());
    EXPECT_EQ(registry.dt(), legacy.dt());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(registry.samples()[i], legacy.samples()[i]) << "sample " << i;
    }
}

TEST(TraceRegistryGolden, PaperSetupTraceStillMatchesTheLegacyPath) {
    // End-to-end: the setup every solar-labelled scenario shares must carry
    // the legacy trace bitwise (make_paper_setup now resolves through the
    // registry).
    core::SetupConfig config;
    config.duration_s = 1500.0;
    config.total_harvest_mj = 35.0;
    const auto setup = core::make_paper_setup(config);
    const auto legacy = legacy_paper_trace(config);
    ASSERT_EQ(setup.trace.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(setup.trace.samples()[i], legacy.samples()[i])
            << "sample " << i;
    }
}

// --- Registry behaviour ---------------------------------------------------

TEST(TraceRegistry, BuiltInsAreRegistered) {
    const auto names = energy::trace_source_names();
    for (const char* name : {"solar", "rf-bursty", "ou-wind", "duty-cycle",
                             "constant", "csv"}) {
        EXPECT_TRUE(energy::has_trace_source(name)) << name;
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
            << name;
        EXPECT_FALSE(energy::trace_source_description(name).empty()) << name;
        EXPECT_FALSE(energy::trace_source_param_names(name).empty()) << name;
    }
}

TEST(TraceRegistry, UnknownSourceListsEveryRegisteredName) {
    try {
        (void)energy::make_trace("no-such-source");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no-such-source"), std::string::npos);
        EXPECT_NE(what.find("rf-bursty"), std::string::npos);
        EXPECT_NE(what.find("solar"), std::string::npos);
    }
}

TEST(TraceRegistry, CustomSourcesRegisterAndResolve) {
    energy::register_trace_source(
        "test-ramp",
        [](const energy::TraceSourceContext& ctx,
           const energy::TraceParams& params) {
            energy::TraceParamReader reader("test-ramp", params);
            const double slope = reader.positive("slope_mw_per_s", 0.001);
            reader.done();
            std::vector<double> samples;
            for (double t = 0.0; t < ctx.duration_s; t += ctx.dt_s) {
                samples.push_back(slope * t);
            }
            return energy::PowerTrace(ctx.dt_s, std::move(samples));
        },
        "linear ramp (test)", {"slope_mw_per_s"});
    EXPECT_TRUE(energy::has_trace_source("test-ramp"));

    energy::TraceSourceContext ctx;
    ctx.duration_s = 10.0;
    const auto trace =
        energy::make_trace("test-ramp", ctx, {{"slope_mw_per_s", "2"}});
    ASSERT_EQ(trace.size(), 10u);
    EXPECT_DOUBLE_EQ(trace.samples()[9], 18.0);

    // The custom source validates its own parameter map like a built-in.
    EXPECT_THROW(
        (void)energy::make_trace("test-ramp", ctx, {{"slop", "2"}}),
        std::invalid_argument);
}

// --- Parameter validation per built-in source -----------------------------

void expect_param_error(const std::string& source,
                        const energy::TraceParams& params,
                        const std::string& needle) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 600.0;
    try {
        (void)energy::make_trace(source, ctx, params);
        FAIL() << source << ": expected failure containing '" << needle
               << "'";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trace source '" + source + "'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
}

TEST(TraceParams, UnknownKeysFailNamingEverythingTheSourceAccepts) {
    expect_param_error("solar", {{"peak", "1"}},
                       "unknown parameter 'peak'");
    expect_param_error("solar", {{"peak", "1"}}, "peak_power_mw");
    expect_param_error("rf-bursty", {{"burst", "1"}}, "mean_on_s");
    expect_param_error("ou-wind", {{"theta", "0.1"}}, "reversion_rate");
    expect_param_error("duty-cycle", {{"duty_cycle", "0.5"}},
                       "accepts: duty, period_s, power_mw");
    expect_param_error("constant", {{"mw", "1"}}, "power_mw");
    expect_param_error("csv", {{"path", "x"}, {"rescale", "no"}},
                       "unknown parameter 'rescale'");
}

TEST(TraceParams, MalformedAndOutOfRangeValuesFail) {
    expect_param_error("rf-bursty", {{"burst_power_mw", "strong"}},
                       "expects a number");
    expect_param_error("rf-bursty", {{"burst_power_mw", "-1"}},
                       "must be > 0");
    expect_param_error("rf-bursty", {{"mean_off_s", "0"}}, "must be > 0");
    expect_param_error("ou-wind",
                       {{"mean_power_mw", "0.01"}, {"floor_mw", "0.02"}},
                       "floor_mw must not exceed mean_power_mw");
    expect_param_error("duty-cycle", {{"duty", "1.5"}}, "in [0, 1]");
    expect_param_error("duty-cycle", {{"duty", "0"}}, "duty must be > 0");
    expect_param_error("solar", {{"sunrise_hour", "19"}},
                       "sunrise_hour < sunset_hour");
    expect_param_error("solar", {{"window", "noon"}},
                       "daylight or full-day");
    expect_param_error("csv", {}, "requires parameter 'path'");
    expect_param_error("csv", {{"path", "/no/such/file.csv"}},
                       "cannot load");
}

TEST(TraceParams, SolarRejectsDurationsBeyondTheHarvestingWindow) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 50000.0;  // > the 43200 s daylight window
    EXPECT_THROW((void)energy::make_trace("solar", ctx, {}),
                 std::invalid_argument);
    // The full-day window (86400 s) accommodates the same duration.
    const auto trace =
        energy::make_trace("solar", ctx, {{"window", "full-day"}});
    EXPECT_EQ(trace.size(), 50000u);
}

// --- Generator properties -------------------------------------------------

TEST(RfBursty, IsDeterministicAndMarkovModulated) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 4000.0;
    ctx.seed = 11;
    const energy::TraceParams params = {{"burst_power_mw", "0.5"},
                                        {"mean_on_s", "3"},
                                        {"mean_off_s", "27"},
                                        {"power_jitter", "0"}};
    const auto a = energy::make_trace("rf-bursty", ctx, params);
    const auto b = energy::make_trace("rf-bursty", ctx, params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.samples()[i], b.samples()[i]);
    }

    // With no jitter every sample is exactly idle (0) or burst power, and
    // the on-fraction concentrates near mean_on / (mean_on + mean_off).
    std::size_t on = 0;
    for (const double p : a.samples()) {
        EXPECT_TRUE(p == 0.0 || p == 0.5) << p;
        if (p == 0.5) ++on;
    }
    const double on_fraction =
        static_cast<double>(on) / static_cast<double>(a.size());
    EXPECT_GT(on_fraction, 0.02);
    EXPECT_LT(on_fraction, 0.35);

    ctx.seed = 12;
    const auto c = energy::make_trace("rf-bursty", ctx, params);
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.samples()[i] != c.samples()[i]) any_different = true;
    }
    EXPECT_TRUE(any_different) << "seed must re-roll the burst pattern";
}

TEST(OuWind, RevertsToTheMeanAndRespectsTheFloor) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 8000.0;
    ctx.seed = 5;
    const auto trace = energy::make_trace(
        "ou-wind", ctx,
        {{"mean_power_mw", "0.05"}, {"sigma", "0.01"}, {"floor_mw", "0.002"},
         {"reversion_rate", "0.02"}});
    double sum = 0.0;
    for (const double p : trace.samples()) {
        EXPECT_GE(p, 0.002);
        sum += p;
    }
    const double mean = sum / static_cast<double>(trace.size());
    EXPECT_NEAR(mean, 0.05, 0.02);
}

TEST(DutyCycle, MatchesThePowerTraceSquareWaveFactory) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 600.0;
    const auto from_registry = energy::make_trace(
        "duty-cycle", ctx,
        {{"power_mw", "0.08"}, {"period_s", "50"}, {"duty", "0.3"}});
    const auto direct =
        energy::PowerTrace::square_wave(0.08, 50.0, 0.3, 600.0, 1.0);
    ASSERT_EQ(from_registry.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        ASSERT_EQ(from_registry.samples()[i], direct.samples()[i]);
    }
}

TEST(ConstantSource, IsFlat) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 100.0;
    const auto trace =
        energy::make_trace("constant", ctx, {{"power_mw", "0.033"}});
    for (const double p : trace.samples()) EXPECT_DOUBLE_EQ(p, 0.033);
}

TEST(CsvSource, RoundTripsATraceWrittenByToCsv) {
    energy::TraceSourceContext ctx;
    ctx.duration_s = 300.0;
    ctx.seed = 3;
    const auto original = energy::make_trace("rf-bursty", ctx, {});
    const std::string path = testing::TempDir() + "/imx_trace_roundtrip.csv";
    original.to_csv(path);

    const auto replayed = energy::make_trace("csv", {}, {{"path", path}});
    ASSERT_EQ(replayed.size(), original.size());
    EXPECT_EQ(replayed.dt(), original.dt());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(replayed.samples()[i], original.samples()[i]);
    }
}

TEST(CsvSource, RejectsNonUniformOrNonIncreasingTimeGrids) {
    // An irregular logger export (dropped samples) must fail loudly: the
    // trace representation is a uniform grid, so replaying it at the
    // first-two-rows dt would silently use the wrong time base.
    const std::string path = testing::TempDir() + "/imx_nonuniform.csv";
    {
        std::ofstream file(path);
        file << "time_s,power_mw\n0,0.1\n1,0.1\n5,0.1\n6,0.1\n";
    }
    EXPECT_THROW((void)energy::make_trace("csv", {}, {{"path", path}}),
                 std::invalid_argument);
    {
        std::ofstream file(path);
        file << "time_s,power_mw\n2,0.1\n1,0.1\n0,0.1\n";
    }
    EXPECT_THROW((void)energy::make_trace("csv", {}, {{"path", path}}),
                 std::invalid_argument);
}

TEST(SetupIntegration, NonSolarSourcesBuildFullSetupsAtTheSameBudget) {
    // A registry source threaded through SetupConfig yields a complete,
    // runnable setup: trace rescaled to the harvest budget, events spread
    // over the trace duration.
    core::SetupConfig config;
    config.duration_s = 1200.0;
    config.event_count = 40;
    config.total_harvest_mj = 30.0;
    config.trace_source = "rf-bursty";
    config.trace_params = {{"burst_power_mw", "0.8"}, {"mean_off_s", "10"}};
    const auto setup = core::make_paper_setup(config);
    EXPECT_NEAR(setup.trace.total_energy(), 30.0, 1e-9);
    ASSERT_EQ(setup.events.size(), 40u);
    EXPECT_LE(setup.events.back().time_s, setup.trace.duration());
}

}  // namespace
