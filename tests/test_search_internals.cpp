// Tests for search internals: the Eq. 9 observation vector and episode
// bookkeeping invariants.
#include <gtest/gtest.h>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"

namespace {

using namespace imx;

TEST(SearchInternals, EpisodeRewardsTrackFeasibility) {
    const auto setup = core::make_paper_setup();
    const core::AccuracyModel oracle(
        setup.network, {core::kPaperFullPrecisionAcc.begin(),
                        core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(setup.network, oracle, trace_eval,
                                          core::paper_constraints(), true);
    core::SearchConfig cfg;
    cfg.episodes = 50;
    cfg.seed = 3;
    core::CompressionSearch search(evaluator, cfg);
    const auto r = search.run_random();
    // Feasible episodes carry Racc in (0, 1]; infeasible ones carry -1.
    int feasible = 0;
    for (const double reward : r.episode_reward) {
        if (reward >= 0.0) {
            EXPECT_LE(reward, 1.0);
            ++feasible;
        } else {
            EXPECT_DOUBLE_EQ(reward, -1.0);
        }
    }
    EXPECT_EQ(r.found_feasible, feasible > 0);
    if (r.found_feasible) {
        // best_reward is the max over feasible episode rewards.
        double best = -1.0;
        for (const double reward : r.episode_reward) best = std::max(best, reward);
        EXPECT_DOUBLE_EQ(r.best_reward, best);
    }
}

TEST(SearchInternals, ScoreMatchesAccountingDirectly) {
    const auto setup = core::make_paper_setup();
    const core::AccuracyModel oracle(
        setup.network, {core::kPaperFullPrecisionAcc.begin(),
                        core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(setup.network, oracle, trace_eval,
                                          core::paper_constraints(), true);
    const auto policy = core::reference_nonuniform_policy();
    const auto score = evaluator.score(policy);
    EXPECT_DOUBLE_EQ(
        score.total_macs,
        static_cast<double>(compress::total_macs(setup.network, policy)));
    EXPECT_DOUBLE_EQ(score.bytes, compress::model_bytes(setup.network, policy));
    // Racc equals the trace evaluator's output for the same inputs.
    const auto direct = trace_eval.evaluate(
        compress::per_exit_macs(setup.network, policy),
        oracle.exit_accuracy(policy));
    EXPECT_DOUBLE_EQ(score.racc, direct.avg_accuracy_all);
}

TEST(SearchInternals, TraceEvaluatorTotalEnergyIsPlausible) {
    const auto setup = core::make_paper_setup();
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    // Net storable energy (after efficiency/leakage) is below the gross
    // harvest but the same order of magnitude.
    const double net = trace_eval.total_harvestable_mj();
    EXPECT_LT(net, setup.trace.total_energy());
    EXPECT_GT(net, 0.75 * setup.trace.total_energy());
}

TEST(SearchInternals, LambdaScalesOnlyMagnitudeNotArgmax) {
    const auto setup = core::make_paper_setup();
    const core::AccuracyModel oracle(
        setup.network, {core::kPaperFullPrecisionAcc.begin(),
                        core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(setup.network, oracle, trace_eval,
                                          core::paper_constraints(), true);
    core::SearchConfig a;
    a.episodes = 40;
    a.seed = 5;
    core::SearchConfig b = a;
    b.lambda1 = 2.5;
    b.lambda2 = 0.5;
    // Random search ignores lambdas entirely: identical outcomes.
    core::CompressionSearch sa(evaluator, a);
    core::CompressionSearch sb(evaluator, b);
    EXPECT_DOUBLE_EQ(sa.run_random().best_reward, sb.run_random().best_reward);
}

}  // namespace
