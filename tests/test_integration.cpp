// End-to-end integration tests: the full paper pipeline (setup -> deploy ->
// simulate -> metrics), headline orderings, reproducibility, and the
// real-network uniform-vs-nonuniform direction check.
#include <gtest/gtest.h>

#include "baselines/baseline_models.hpp"
#include "compress/surgery.hpp"
#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "data/synth_cifar.hpp"
#include "nn/train.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace imx;

sim::SimResult run_ours_static(const core::ExperimentSetup& setup) {
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    return simulator.run(setup.events, model, policy);
}

sim::SimResult run_baseline(const core::ExperimentSetup& setup,
                            baselines::FixedBaselineModel model) {
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.checkpointed_sim);
    return simulator.run(setup.events, model, policy);
}

TEST(Integration, EventAccountingAndFeasibilityInvariants) {
    const auto setup = core::make_paper_setup();
    const auto r = run_ours_static(setup);
    EXPECT_EQ(r.total_events(), 500);
    EXPECT_EQ(r.processed_count() + r.missed_count(), 500);
    EXPECT_GE(r.correct_count(), 0);
    EXPECT_LE(r.correct_count(), r.processed_count());
    // Paper Eq. 5: cumulative consumption never exceeds harvest + buffer.
    EXPECT_TRUE(r.energy_feasible(setup.multi_exit_sim.storage.initial_mj));
    // Every processed record is self-consistent.
    for (const auto& rec : r.records) {
        if (!rec.processed) continue;
        EXPECT_GE(rec.completion_time_s, rec.arrival_time_s);
        EXPECT_GE(rec.inference_start_s, rec.arrival_time_s);
        EXPECT_GT(rec.energy_spent_mj, 0.0);
        EXPECT_GT(rec.macs, 0);
        EXPECT_GE(rec.exit_taken, 0);
        EXPECT_LT(rec.exit_taken, 3);
    }
}

TEST(Integration, HeadlineOrderingOursBeatsAllBaselines) {
    const auto setup = core::make_paper_setup();
    const auto ours = run_ours_static(setup);
    const auto sonic = run_baseline(setup, baselines::make_sonic_net());
    const auto sparse = run_baseline(setup, baselines::make_sparse_net());
    const auto lenet = run_baseline(setup, baselines::make_lenet_cifar());

    // Fig. 5 ordering: ours > LeNet-Cifar > SonicNet > SpArSeNet.
    EXPECT_GT(ours.iepmj(), lenet.iepmj());
    EXPECT_GT(lenet.iepmj(), sonic.iepmj());
    EXPECT_GT(sonic.iepmj(), sparse.iepmj());

    // Rough factors (paper: 3.6x / 18.9x / 1.28x); require at least 2x / 8x.
    EXPECT_GT(ours.iepmj() / sonic.iepmj(), 2.0);
    EXPECT_GT(ours.iepmj() / sparse.iepmj(), 8.0);

    // Sec. V-D latency ordering.
    EXPECT_LT(ours.mean_event_latency_s(), lenet.mean_event_latency_s());
    EXPECT_LT(lenet.mean_event_latency_s(), sonic.mean_event_latency_s());
    EXPECT_LT(sonic.mean_event_latency_s(), sparse.mean_event_latency_s());

    // Processed-event accuracy: baselines win per-inference (paper V-C), we
    // win on all-events accuracy.
    EXPECT_GT(ours.accuracy_all_events(), sonic.accuracy_all_events());
    EXPECT_GT(sonic.accuracy_processed(), ours.accuracy_processed());
}

TEST(Integration, QLearningImprovesOverStaticLut) {
    const auto setup = core::make_paper_setup();
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::QLearningExitPolicy policy(3, sim::RuntimeConfig{});
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    for (int episode = 0; episode < 12; ++episode) {
        const auto events = sim::generate_events(
            {500, setup.trace.duration(), sim::ArrivalKind::kUniform,
             2000 + static_cast<std::uint64_t>(episode)});
        (void)simulator.run(events, model, policy);
    }
    policy.set_eval_mode(true);
    const auto learned = simulator.run(setup.events, model, policy);
    const auto lut = run_ours_static(setup);
    // Fig. 7: the learned policy processes at least as many events and is
    // at least on par on all-event accuracy.
    EXPECT_GE(learned.processed_count(), lut.processed_count() - 5);
    EXPECT_GE(learned.accuracy_all_events(),
              lut.accuracy_all_events() - 0.01);
    // And it shifts the exit mix toward the cheap first exit (Fig. 7b).
    const auto hist_learned = learned.exit_histogram(3);
    const auto hist_lut = lut.exit_histogram(3);
    EXPECT_GT(hist_learned[0], hist_lut[0]);
}

TEST(Integration, ReproducibleForFixedSeeds) {
    const auto s1 = core::make_paper_setup();
    const auto s2 = core::make_paper_setup();
    const auto r1 = run_ours_static(s1);
    const auto r2 = run_ours_static(s2);
    EXPECT_EQ(r1.processed_count(), r2.processed_count());
    EXPECT_EQ(r1.correct_count(), r2.correct_count());
    EXPECT_EQ(r1.mean_event_latency_s(), r2.mean_event_latency_s());
}

TEST(Integration, DifferentEventSeedChangesScheduleNotInvariants) {
    core::SetupConfig cfg;
    cfg.event_seed = 424242;
    const auto setup = core::make_paper_setup(cfg);
    const auto r = run_ours_static(setup);
    EXPECT_EQ(r.total_events(), 500);
    EXPECT_TRUE(r.energy_feasible(setup.multi_exit_sim.storage.initial_mj));
    EXPECT_GT(r.processed_count(), 100);  // sane under any uniform schedule
}

TEST(Integration, IncrementalInferenceRescuesLowConfidenceEvents) {
    // Force frequent continuation: threshold-free policy that always
    // continues when affordable, vs one that never does. Deeper final exits
    // must raise correctness on the continued events.
    struct AlwaysContinue final : sim::ExitPolicy {
        int select_exit(const sim::EnergyState&, const sim::InferenceModel&) override {
            return 0;
        }
        bool continue_inference(const sim::EnergyState& s,
                                const sim::InferenceModel& m, int cur,
                                double) override {
            return sim::macs_energy_mj(s, m.incremental_macs(cur, cur + 1)) <=
                   s.level_mj;
        }
    };
    struct NeverContinue final : sim::ExitPolicy {
        int select_exit(const sim::EnergyState&, const sim::InferenceModel&) override {
            return 0;
        }
        bool continue_inference(const sim::EnergyState&, const sim::InferenceModel&,
                                int, double) override {
            return false;
        }
    };
    const auto setup = core::make_paper_setup();
    core::OracleInferenceModel m1(setup.network, setup.deployed_policy,
                                  setup.exit_accuracy);
    core::OracleInferenceModel m2(setup.network, setup.deployed_policy,
                                  setup.exit_accuracy);
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    AlwaysContinue always;
    NeverContinue never;
    const auto with_inc = simulator.run(setup.events, m1, always);
    const auto without_inc = simulator.run(setup.events, m2, never);
    EXPECT_GT(with_inc.accuracy_processed(), without_inc.accuracy_processed());
    // Hops recorded.
    int multi_hop = 0;
    for (const auto& rec : with_inc.records) multi_hop += rec.hops > 1 ? 1 : 0;
    EXPECT_GT(multi_hop, 0);
}

TEST(Integration, RealNetworkNonuniformPreservesEarlyExitsBetter) {
    // Train the tiny multi-exit network on SynthCIFAR, then compress two
    // clones to comparable budgets: uniformly vs nonuniformly (shallow-light,
    // deep-heavy, big-FC binarized). The nonuniform variant must keep more
    // exit-1 accuracy — the real-network analogue of Fig. 1b's direction.
    util::Rng rng(1234);
    nn::ExitGraph graph = core::build_tiny_graph(rng);
    data::SynthCifarConfig dcfg;
    dcfg.num_samples = 500;
    dcfg.height = 16;
    dcfg.width = 16;
    dcfg.noise_level = 0.08;
    dcfg.seed = 77;
    const auto ds = data::make_synth_cifar(dcfg);
    const auto [train, test] = data::split(ds, 0.3, 5);

    nn::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batch_size = 16;
    tcfg.lr = 0.03F;
    (void)nn::train_multi_exit(graph, train.images, train.labels, tcfg);
    const auto base_acc = nn::evaluate_exits(graph, test.images, test.labels);
    ASSERT_GT(base_acc[0], 0.2);  // learned something at exit 1

    const auto desc = core::make_tiny_network_desc();

    nn::ExitGraph uniform_net = graph.clone();
    compress::Policy uniform =
        compress::Policy::uniform(desc.num_layers(), 0.5, 2, 8);
    compress::apply_policy(uniform_net, desc, uniform);

    nn::ExitGraph nonuniform_net = graph.clone();
    compress::Policy nonuniform = uniform;
    const char* shallow[] = {"Conv1", "ConvB1", "FC-B1"};
    for (const char* name : shallow) {
        auto& lp = nonuniform[static_cast<std::size_t>(desc.layer_index(name))];
        lp.preserve_ratio = 0.95;
        lp.weight_bits = 8;
    }
    const char* deep[] = {"Conv3", "Conv4"};
    for (const char* name : deep) {
        auto& lp = nonuniform[static_cast<std::size_t>(desc.layer_index(name))];
        lp.preserve_ratio = 0.35;
    }
    compress::apply_policy(nonuniform_net, desc, nonuniform);

    const auto uni_acc =
        nn::evaluate_exits(uniform_net, test.images, test.labels);
    const auto non_acc =
        nn::evaluate_exits(nonuniform_net, test.images, test.labels);
    // Direction check on the early exit (generous margin; small nets are
    // noisy but the seeds are fixed so this is deterministic).
    EXPECT_GE(non_acc[0], uni_acc[0]);
}

}  // namespace
