// Persistence round-trips: Q-table LUTs (deployment artifact) and power
// traces (CSV exchange format).
#include <gtest/gtest.h>

#include <cstdio>

#include "energy/power_trace.hpp"
#include "energy/solar.hpp"
#include "rl/qtable.hpp"
#include "util/contracts.hpp"

namespace {

using namespace imx;

TEST(QTablePersistence, SaveLoadRoundTrip) {
    rl::QLearningConfig cfg;
    cfg.alpha = 0.5;
    cfg.epsilon = 0.0;
    rl::QTable original(4, 3, cfg, 1);
    for (std::size_t s = 0; s < 4; ++s) {
        for (std::size_t a = 0; a < 3; ++a) {
            original.update_terminal(s, a, static_cast<double>(s * 10 + a));
        }
    }
    const std::string path = "/tmp/imx_qtable_test.csv";
    original.save(path);

    rl::QTable restored(4, 3, cfg, 2);
    restored.load(path);
    for (std::size_t s = 0; s < 4; ++s) {
        for (std::size_t a = 0; a < 3; ++a) {
            EXPECT_DOUBLE_EQ(restored.q(s, a), original.q(s, a));
        }
        EXPECT_EQ(restored.greedy(s), original.greedy(s));
    }
    std::remove(path.c_str());
}

TEST(QTablePersistence, LoadRejectsWrongShape) {
    rl::QLearningConfig cfg;
    rl::QTable small(2, 2, cfg);
    const std::string path = "/tmp/imx_qtable_shape.csv";
    small.save(path);
    rl::QTable big(4, 4, cfg);
    EXPECT_THROW(big.load(path), util::ContractViolation);
    std::remove(path.c_str());
}

TEST(TracePersistence, CsvRoundTripIsExact) {
    energy::SolarConfig cfg;
    cfg.dt_s = 30.0;
    cfg.window_start_hour = 8.0;
    cfg.window_end_hour = 16.0;
    const energy::PowerTrace original = energy::make_solar_trace(cfg);
    const std::string path = "/tmp/imx_trace_roundtrip.csv";
    original.to_csv(path);
    const energy::PowerTrace restored = energy::PowerTrace::from_csv(path);
    ASSERT_EQ(restored.size(), original.size());
    EXPECT_DOUBLE_EQ(restored.dt(), original.dt());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_NEAR(restored.samples()[i], original.samples()[i],
                    1e-6 * (1.0 + original.samples()[i]));
    }
    EXPECT_NEAR(restored.total_energy(), original.total_energy(), 1e-4);
    std::remove(path.c_str());
}

}  // namespace
