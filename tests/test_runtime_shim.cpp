// Shim-drift test for core/runtime.hpp, the deprecated compatibility header
// kept for out-of-tree code written against the original core:: spellings.
//
// This TU deliberately includes ONLY the shim (plus gtest and the minimal
// headers the assertions need): if the shim ever stops pulling in the real
// definitions, or the aliases silently fork from the sim:: types (e.g. a
// rename leaves a stale copy behind), this file stops compiling. The
// static_asserts pin the contract that the aliases are the *same types*,
// not lookalikes — so policies constructed through either spelling stay
// interchangeable during a gradual migration.
#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace {

using namespace imx;

// The aliases must be the sim:: types themselves, not copies.
static_assert(std::is_same_v<core::RuntimeConfig, sim::RuntimeConfig>,
              "core::RuntimeConfig must alias sim::RuntimeConfig");
static_assert(
    std::is_same_v<core::QLearningExitPolicy, sim::QLearningExitPolicy>,
    "core::QLearningExitPolicy must alias sim::QLearningExitPolicy");

// The alias target must still be a usable ExitPolicy implementation.
static_assert(std::is_base_of_v<sim::ExitPolicy, core::QLearningExitPolicy>,
              "the shim'd policy must remain an ExitPolicy");
static_assert(!std::is_copy_constructible_v<core::QLearningExitPolicy>,
              "ExitPolicy implementations are non-copyable by contract");

TEST(RuntimeShim, ConstructsThroughTheDeprecatedSpelling) {
    core::RuntimeConfig config;
    config.energy_bins = 4;
    config.rate_bins = 3;
    core::QLearningExitPolicy policy(3, config);
    // A freshly constructed learner must behave like one built through the
    // sim:: spelling: same defaults, same virtual dispatch.
    sim::ExitPolicy& as_base = policy;
    as_base.observe_missed();  // the default hooks stay callable
    SUCCEED();
}

TEST(RuntimeShim, ConfigFieldsRoundTripAcrossSpellings) {
    core::RuntimeConfig via_core;
    via_core.slack_bins = 4;
    // Same type: assigning through one spelling is visible through the
    // other with no conversion.
    const sim::RuntimeConfig& via_sim = via_core;
    EXPECT_EQ(via_sim.slack_bins, 4u);
}

}  // namespace
