// Differential kernel harness: sweeps randomized conv/gemm shapes,
// paddings, and pruning patterns through both dispatch backends and pins
// their agreement to the documented numeric contract (docs/kernels.md):
//   * conv2d_forward and bias_act: bitwise identical scalar vs AVX2;
//   * gemm: <= kGemmUlpBound ULPs at the reduction magnitude;
//   * conv2d_backward / gemm_backward: <= kBackwardUlpBound ULPs at the
//     reduction magnitude (the magnitude is sum(|terms|), recovered by
//     running the scalar kernel on the absolute values of its inputs);
// plus transplant proofs that the layer classes under forced-scalar
// dispatch reproduce the historical loop results bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;
using nn::kernels::Conv2dGeom;

bool avx2_available() {
    return nn::kernels::avx2_kernels_compiled() &&
           nn::kernels::cpu_supports_avx2();
}

/// Restores the dispatch selection (including "unset") on scope exit so a
/// failing test cannot leak a forced backend into later tests.
class BackendGuard {
public:
    BackendGuard() = default;
    ~BackendGuard() { nn::kernels::clear_backend_override(); }
    BackendGuard(const BackendGuard&) = delete;
    BackendGuard& operator=(const BackendGuard&) = delete;
};

std::uint32_t float_bits(float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/// Agreement check for re-associated reductions. Splitting a K-term sum
/// into 8 lanes perturbs it by a small multiple of eps at the magnitude of
/// sum(|terms|), not of the (possibly cancelled) result, so the documented
/// bounds are ULPs *at that magnitude*: the tolerance is
/// ulps * 2^-23 * max(|a|, |b|, mag). Callers recover mag by running the
/// scalar kernel on the absolute values of its inputs.
testing::AssertionResult reduction_close(float a, float b, float mag,
                                         std::int64_t ulps) {
    if (!std::isfinite(a) || !std::isfinite(b) || !std::isfinite(mag)) {
        return testing::AssertionFailure()
               << "non-finite value in reduction comparison: " << a << " vs "
               << b << " (magnitude " << mag << ")";
    }
    if (float_bits(a) == float_bits(b)) return testing::AssertionSuccess();
    const double scale = std::max({std::fabs(static_cast<double>(a)),
                                   std::fabs(static_cast<double>(b)),
                                   std::fabs(static_cast<double>(mag))});
    const double tol = static_cast<double>(ulps) * std::ldexp(scale, -23);
    const double diff =
        std::fabs(static_cast<double>(a) - static_cast<double>(b));
    if (diff <= tol) return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << a << " vs " << b << ": |diff| = " << diff << " > " << tol
           << " (" << ulps << " ULPs at magnitude " << scale << ")";
}

std::vector<float> abs_of(const std::vector<float>& v) {
    std::vector<float> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::fabs(v[i]);
    return out;
}

void fill_random(std::vector<float>& v, util::Rng& rng, double zero_prob) {
    for (float& x : v) {
        x = rng.uniform(0.0, 1.0) < zero_prob
                ? 0.0F
                : static_cast<float>(rng.normal());
    }
}

/// Zero whole input channels of a conv weight tensor, mimicking what the
/// pruning module leaves behind and exercising the zero-product paths.
void prune_channels(std::vector<float>& w, const Conv2dGeom& g,
                    util::Rng& rng) {
    for (int ic = 0; ic < g.in_channels; ++ic) {
        if (rng.uniform(0.0, 1.0) > 0.3) continue;
        for (int oc = 0; oc < g.out_channels; ++oc) {
            for (int k = 0; k < g.kernel * g.kernel; ++k) {
                const std::size_t idx =
                    (static_cast<std::size_t>(oc) * g.in_channels + ic) *
                        g.kernel * g.kernel +
                    static_cast<std::size_t>(k);
                w[idx] = 0.0F;
            }
        }
    }
}

Conv2dGeom random_geom(util::Rng& rng) {
    Conv2dGeom g;
    g.in_channels = rng.uniform_int(1, 5);
    g.out_channels = rng.uniform_int(1, 5);
    g.kernel = 2 * rng.uniform_int(0, 2) + 1;  // 1, 3, 5
    g.padding = rng.uniform_int(0, 2);
    // Heights/widths chosen so the vector body, its tail, and tiny
    // all-tail outputs are all exercised (out_w from 1 to ~18).
    do {
        g.in_h = rng.uniform_int(g.kernel, 14);
        g.in_w = rng.uniform_int(g.kernel, 18);
    } while (g.out_h() <= 0 || g.out_w() <= 0);
    return g;
}

TEST(KernelsDiff, Conv2dForwardScalarVsAvx2Bitwise) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng rng(0xc0411f0d);
    for (int trial = 0; trial < 60; ++trial) {
        const Conv2dGeom g = random_geom(rng);
        std::vector<float> in(static_cast<std::size_t>(g.in_channels) *
                              g.in_h * g.in_w);
        std::vector<float> w(static_cast<std::size_t>(g.out_channels) *
                             g.in_channels * g.kernel * g.kernel);
        std::vector<float> b(static_cast<std::size_t>(g.out_channels));
        fill_random(in, rng, 0.2);
        fill_random(w, rng, 0.1);
        fill_random(b, rng, 0.3);
        prune_channels(w, g, rng);

        const std::size_t out_n = static_cast<std::size_t>(g.out_channels) *
                                  g.out_h() * g.out_w();
        std::vector<float> out_scalar(out_n);
        std::vector<float> out_avx2(out_n);
        nn::kernels::force_backend(nn::kernels::Backend::kScalar);
        nn::kernels::conv2d_forward(g, in.data(), w.data(), b.data(),
                                    out_scalar.data());
        nn::kernels::force_backend(nn::kernels::Backend::kAvx2);
        nn::kernels::conv2d_forward(g, in.data(), w.data(), b.data(),
                                    out_avx2.data());

        for (std::size_t i = 0; i < out_n; ++i) {
            ASSERT_EQ(float_bits(out_scalar[i]), float_bits(out_avx2[i]))
                << "trial " << trial << " element " << i << ": "
                << out_scalar[i] << " vs " << out_avx2[i];
        }
    }
}

TEST(KernelsDiff, GemmScalarVsAvx2WithinUlpBound) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng rng(0x6e6d6d);
    for (int trial = 0; trial < 80; ++trial) {
        const int out_f = rng.uniform_int(1, 40);
        const int in_f = rng.uniform_int(1, 300);
        std::vector<float> w(static_cast<std::size_t>(out_f) * in_f);
        std::vector<float> x(static_cast<std::size_t>(in_f));
        std::vector<float> b(static_cast<std::size_t>(out_f));
        fill_random(w, rng, 0.15);
        fill_random(x, rng, 0.15);
        fill_random(b, rng, 0.3);

        std::vector<float> y_scalar(static_cast<std::size_t>(out_f));
        std::vector<float> y_avx2(static_cast<std::size_t>(out_f));
        std::vector<float> y_mag(static_cast<std::size_t>(out_f));
        nn::kernels::force_backend(nn::kernels::Backend::kScalar);
        nn::kernels::gemm(out_f, in_f, w.data(), x.data(), b.data(),
                          y_scalar.data());
        const std::vector<float> w_abs = abs_of(w);
        const std::vector<float> x_abs = abs_of(x);
        const std::vector<float> b_abs = abs_of(b);
        nn::kernels::gemm(out_f, in_f, w_abs.data(), x_abs.data(),
                          b_abs.data(), y_mag.data());
        nn::kernels::force_backend(nn::kernels::Backend::kAvx2);
        nn::kernels::gemm(out_f, in_f, w.data(), x.data(), b.data(),
                          y_avx2.data());

        for (int r = 0; r < out_f; ++r) {
            const auto ri = static_cast<std::size_t>(r);
            EXPECT_TRUE(reduction_close(y_scalar[ri], y_avx2[ri], y_mag[ri],
                                        nn::kernels::kGemmUlpBound))
                << "trial " << trial << " row " << r;
        }
    }
}

TEST(KernelsDiff, Conv2dBackwardScalarVsAvx2WithinUlpBound) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng rng(0xbac4a2d);
    for (int trial = 0; trial < 40; ++trial) {
        const Conv2dGeom g = random_geom(rng);
        const std::size_t in_n =
            static_cast<std::size_t>(g.in_channels) * g.in_h * g.in_w;
        const std::size_t w_n = static_cast<std::size_t>(g.out_channels) *
                                g.in_channels * g.kernel * g.kernel;
        const std::size_t out_n = static_cast<std::size_t>(g.out_channels) *
                                  g.out_h() * g.out_w();
        std::vector<float> in(in_n);
        std::vector<float> w(w_n);
        std::vector<float> gout(out_n);
        fill_random(in, rng, 0.2);
        fill_random(w, rng, 0.1);
        // Plenty of exact zeros: the scalar backend short-circuits go == 0.
        fill_random(gout, rng, 0.4);

        std::vector<float> gin_s(in_n);
        std::vector<float> gw_s(w_n, 0.5F);  // nonzero: backward accumulates
        std::vector<float> gb_s(static_cast<std::size_t>(g.out_channels),
                                0.25F);
        std::vector<float> gin_v(in_n);
        std::vector<float> gw_v(w_n, 0.5F);
        std::vector<float> gb_v(static_cast<std::size_t>(g.out_channels),
                                0.25F);

        nn::kernels::force_backend(nn::kernels::Backend::kScalar);
        nn::kernels::conv2d_backward(g, in.data(), w.data(), gout.data(),
                                     gin_s.data(), gw_s.data(), gb_s.data());
        // Reduction magnitudes: the same scalar kernel on |inputs| yields
        // sum(|terms|) for every grad element (the pre-seeds are positive).
        std::vector<float> gin_m(in_n);
        std::vector<float> gw_m(w_n, 0.5F);
        std::vector<float> gb_m(static_cast<std::size_t>(g.out_channels),
                                0.25F);
        const std::vector<float> in_abs = abs_of(in);
        const std::vector<float> w_abs = abs_of(w);
        const std::vector<float> gout_abs = abs_of(gout);
        nn::kernels::conv2d_backward(g, in_abs.data(), w_abs.data(),
                                     gout_abs.data(), gin_m.data(),
                                     gw_m.data(), gb_m.data());
        nn::kernels::force_backend(nn::kernels::Backend::kAvx2);
        nn::kernels::conv2d_backward(g, in.data(), w.data(), gout.data(),
                                     gin_v.data(), gw_v.data(), gb_v.data());

        for (std::size_t i = 0; i < in_n; ++i) {
            ASSERT_TRUE(reduction_close(gin_s[i], gin_v[i], gin_m[i],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_input, trial " << trial << " element " << i;
        }
        for (std::size_t i = 0; i < w_n; ++i) {
            ASSERT_TRUE(reduction_close(gw_s[i], gw_v[i], gw_m[i],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_weight, trial " << trial << " element " << i;
        }
        for (int oc = 0; oc < g.out_channels; ++oc) {
            const auto oci = static_cast<std::size_t>(oc);
            ASSERT_TRUE(reduction_close(gb_s[oci], gb_v[oci], gb_m[oci],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_bias, trial " << trial << " channel " << oc;
        }
    }
}

TEST(KernelsDiff, GemmBackwardScalarVsAvx2WithinUlpBound) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng rng(0x6b9d);
    for (int trial = 0; trial < 60; ++trial) {
        const int out_f = rng.uniform_int(1, 30);
        const int in_f = rng.uniform_int(1, 200);
        std::vector<float> w(static_cast<std::size_t>(out_f) * in_f);
        std::vector<float> x(static_cast<std::size_t>(in_f));
        std::vector<float> gy(static_cast<std::size_t>(out_f));
        fill_random(w, rng, 0.1);
        fill_random(x, rng, 0.2);
        fill_random(gy, rng, 0.4);

        std::vector<float> gx_s(static_cast<std::size_t>(in_f), -7.0F);
        std::vector<float> gw_s(w.size(), 0.5F);
        std::vector<float> gb_s(gy.size(), 0.25F);
        std::vector<float> gx_v(static_cast<std::size_t>(in_f), 9.0F);
        std::vector<float> gw_v(w.size(), 0.5F);
        std::vector<float> gb_v(gy.size(), 0.25F);

        nn::kernels::force_backend(nn::kernels::Backend::kScalar);
        nn::kernels::gemm_backward(out_f, in_f, w.data(), x.data(), gy.data(),
                                   gx_s.data(), gw_s.data(), gb_s.data());
        std::vector<float> gx_m(static_cast<std::size_t>(in_f));
        std::vector<float> gw_m(w.size(), 0.5F);
        std::vector<float> gb_m(gy.size(), 0.25F);
        const std::vector<float> w_abs = abs_of(w);
        const std::vector<float> x_abs = abs_of(x);
        const std::vector<float> gy_abs = abs_of(gy);
        nn::kernels::gemm_backward(out_f, in_f, w_abs.data(), x_abs.data(),
                                   gy_abs.data(), gx_m.data(), gw_m.data(),
                                   gb_m.data());
        nn::kernels::force_backend(nn::kernels::Backend::kAvx2);
        nn::kernels::gemm_backward(out_f, in_f, w.data(), x.data(), gy.data(),
                                   gx_v.data(), gw_v.data(), gb_v.data());

        for (int c = 0; c < in_f; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            ASSERT_TRUE(reduction_close(gx_s[ci], gx_v[ci], gx_m[ci],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_x, trial " << trial << " col " << c;
        }
        for (std::size_t i = 0; i < w.size(); ++i) {
            ASSERT_TRUE(reduction_close(gw_s[i], gw_v[i], gw_m[i],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_weight, trial " << trial << " element " << i;
        }
        for (std::size_t i = 0; i < gy.size(); ++i) {
            ASSERT_TRUE(reduction_close(gb_s[i], gb_v[i], gb_m[i],
                                        nn::kernels::kBackwardUlpBound))
                << "grad_bias, trial " << trial << " row " << i;
        }
    }
}

TEST(KernelsDiff, BiasActScalarVsAvx2Bitwise) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng rng(0xb1a5);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.uniform_int(1, 200);
        std::vector<float> x(static_cast<std::size_t>(n));
        fill_random(x, rng, 0.3);
        const float bias =
            rng.uniform(0.0, 1.0) < 0.5 ? 0.0F
                                        : static_cast<float>(rng.normal());
        for (const auto act :
             {nn::kernels::Act::kIdentity, nn::kernels::Act::kRelu}) {
            std::vector<float> y_s(x.size());
            std::vector<float> y_v(x.size());
            nn::kernels::force_backend(nn::kernels::Backend::kScalar);
            nn::kernels::bias_act(n, x.data(), bias, act, y_s.data());
            nn::kernels::force_backend(nn::kernels::Backend::kAvx2);
            nn::kernels::bias_act(n, x.data(), bias, act, y_v.data());
            for (std::size_t i = 0; i < x.size(); ++i) {
                ASSERT_EQ(float_bits(y_s[i]), float_bits(y_v[i]))
                    << "trial " << trial << " element " << i;
            }
        }
    }
}

/// Transplant proof: under forced-scalar dispatch the Conv2d layer matches a
/// from-first-principles reimplementation of the historical loop bit for bit
/// (same tap order, same out-of-range skips).
TEST(KernelsDiff, Conv2dLayerScalarMatchesHistoricalLoopBitwise) {
    BackendGuard guard;
    nn::kernels::force_backend(nn::kernels::Backend::kScalar);
    util::Rng rng(0x11a7e6);
    for (int trial = 0; trial < 10; ++trial) {
        const int in_c = rng.uniform_int(1, 4);
        const int out_c = rng.uniform_int(1, 4);
        const int kernel = 3;
        const int padding = rng.uniform_int(0, 1);
        const int h = rng.uniform_int(4, 10);
        const int w = rng.uniform_int(4, 10);
        util::Rng init(static_cast<std::uint64_t>(trial) + 77);
        nn::Conv2d conv(in_c, out_c, kernel, padding, "c", init);

        nn::Tensor x({in_c, h, w});
        for (std::int64_t i = 0; i < x.numel(); ++i) {
            x[i] = static_cast<float>(rng.normal());
        }
        const nn::Tensor got = conv.forward(x);

        const int oh = h + 2 * padding - kernel + 1;
        const int ow = w + 2 * padding - kernel + 1;
        for (int oc = 0; oc < out_c; ++oc) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    float acc = conv.bias()[oc];
                    for (int ic = 0; ic < in_c; ++ic) {
                        for (int ky = 0; ky < kernel; ++ky) {
                            const int iy = oy + ky - padding;
                            if (iy < 0 || iy >= h) continue;
                            for (int kx = 0; kx < kernel; ++kx) {
                                const int ix = ox + kx - padding;
                                if (ix < 0 || ix >= w) continue;
                                acc += conv.weight().at(oc, ic, ky, kx) *
                                       x.at(ic, iy, ix);
                            }
                        }
                    }
                    ASSERT_EQ(float_bits(got.at(oc, oy, ox)), float_bits(acc))
                        << "trial " << trial << " (" << oc << "," << oy << ","
                        << ox << ")";
                }
            }
        }
    }
}

/// Same transplant proof for Linear under forced-scalar dispatch.
TEST(KernelsDiff, LinearLayerScalarMatchesHistoricalLoopBitwise) {
    BackendGuard guard;
    nn::kernels::force_backend(nn::kernels::Backend::kScalar);
    util::Rng rng(0x11fea5);
    for (int trial = 0; trial < 10; ++trial) {
        const int in_f = rng.uniform_int(1, 64);
        const int out_f = rng.uniform_int(1, 16);
        util::Rng init(static_cast<std::uint64_t>(trial) + 99);
        nn::Linear fc(in_f, out_f, "fc", init);
        nn::Tensor x({in_f});
        for (std::int64_t i = 0; i < x.numel(); ++i) {
            x[i] = static_cast<float>(rng.normal());
        }
        const nn::Tensor got = fc.forward(x);
        for (int r = 0; r < out_f; ++r) {
            float acc = fc.bias()[r];
            for (int c = 0; c < in_f; ++c) acc += fc.weight().at2(r, c) * x[c];
            ASSERT_EQ(float_bits(got[r]), float_bits(acc))
                << "trial " << trial << " row " << r;
        }
    }
}

/// Layer-level agreement: a full forward/backward through Conv2d under both
/// backends stays within the backward ULP bound (forward is bitwise).
TEST(KernelsDiff, Conv2dLayerForwardBackwardAcrossBackends) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    BackendGuard guard;
    util::Rng data_rng(0x1a7e6);
    for (const auto backend :
         {nn::kernels::Backend::kScalar, nn::kernels::Backend::kAvx2}) {
        nn::kernels::force_backend(backend);
        util::Rng init(123);
        nn::Conv2d conv(3, 5, 3, 1, "c", init);
        nn::Tensor x({3, 9, 11});
        util::Rng xr(456);
        for (std::int64_t i = 0; i < x.numel(); ++i) {
            x[i] = static_cast<float>(xr.normal());
        }
        const nn::Tensor y = conv.forward(x);
        nn::Tensor g(y.shape());
        util::Rng gr(789);
        for (std::int64_t i = 0; i < g.numel(); ++i) {
            g[i] = gr.uniform(0.0, 1.0) < 0.4
                       ? 0.0F
                       : static_cast<float>(gr.normal());
        }
        const nn::Tensor gin = conv.backward(g);
        static nn::Tensor y_ref, gin_ref;
        static std::vector<float> gin_mag;
        if (backend == nn::kernels::Backend::kScalar) {
            y_ref = y;
            gin_ref = gin;
            // Reduction magnitudes for gin via the scalar kernel on
            // |inputs| (still forced-scalar here).
            Conv2dGeom geom;
            geom.in_channels = 3;
            geom.out_channels = 5;
            geom.kernel = 3;
            geom.padding = 1;
            geom.in_h = 9;
            geom.in_w = 11;
            std::vector<float> x_abs(x.data(), x.data() + x.numel());
            std::vector<float> w_abs(
                conv.weight().data(),
                conv.weight().data() + conv.weight().numel());
            std::vector<float> g_abs(g.data(), g.data() + g.numel());
            for (float& v : x_abs) v = std::fabs(v);
            for (float& v : w_abs) v = std::fabs(v);
            for (float& v : g_abs) v = std::fabs(v);
            gin_mag.assign(static_cast<std::size_t>(x.numel()), 0.0F);
            std::vector<float> gw_m(w_abs.size(), 0.0F);
            std::vector<float> gb_m(5, 0.0F);
            nn::kernels::conv2d_backward(geom, x_abs.data(), w_abs.data(),
                                         g_abs.data(), gin_mag.data(),
                                         gw_m.data(), gb_m.data());
        } else {
            for (std::int64_t i = 0; i < y.numel(); ++i) {
                ASSERT_EQ(float_bits(y_ref[i]), float_bits(y[i])) << i;
            }
            for (std::int64_t i = 0; i < gin.numel(); ++i) {
                ASSERT_TRUE(reduction_close(
                    gin_ref[i], gin[i],
                    gin_mag[static_cast<std::size_t>(i)],
                    nn::kernels::kBackwardUlpBound))
                    << i;
            }
        }
    }
}

}  // namespace
