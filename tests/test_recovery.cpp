// The power-failure/recovery differential harness. Three pillars:
//
//  1. Inertness: with the failure model disabled (the default), the
//     simulator's output is bitwise identical to the historical path, and
//     the new SimResult fields stay zero.
//  2. The zero-cost-checkpoint theorem: under a lossless strategy with zero
//     commit/restore costs and no active draw, a run that dies and recovers
//     produces records bitwise equal to the same run with death disabled —
//     only the deaths counter differs.
//  3. Exact accounting: wasted_macs and recovery_energy_mj follow
//     conservation laws on hand-constructed scenarios whose arithmetic is
//     exact in binary (all energies are multiples of 1/32 mJ), plus the
//     monotonicity law that finer checkpointing never wastes more.
//
// The exp-layer half pins the recovery axis: registry/spec round-trips,
// patch labeling, baseline guards, and thread/shard invariance of the new
// metrics through the journal/merge pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "energy/power_trace.hpp"
#include "energy/storage.hpp"
#include "exp/aggregate.hpp"
#include "exp/experiment.hpp"
#include "exp/journal.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/spec_parser.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/recovery/registry.hpp"
#include "sim/recovery/strategy.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

#ifndef IMX_SPEC_DIR
#error "IMX_SPEC_DIR must point at examples/experiments"
#endif

namespace {

using namespace imx;

// --- Controlled fixtures ---------------------------------------------------

/// Two-exit model with uniform 1-MMAC layers: exit 0 costs 1 MMAC, exit 1
/// costs 3 MMAC. At the default 1.5 mJ/MMAC every unit costs exactly 1.5 mJ,
/// which is exact in binary, so whole scenarios stay exact.
class LadderModel final : public sim::InferenceModel {
public:
    [[nodiscard]] int num_exits() const override { return 2; }
    [[nodiscard]] std::int64_t exit_macs(int exit) const override {
        return exit == 0 ? 1000000 : 3000000;
    }
    [[nodiscard]] std::int64_t incremental_macs(int from_exit,
                                                int to_exit) const override {
        return exit_macs(to_exit) - (from_exit < 0 ? 0 : exit_macs(from_exit));
    }
    [[nodiscard]] std::vector<std::int64_t> segment_macs(
        int from_exit, int to_exit) const override {
        const std::int64_t total = incremental_macs(from_exit, to_exit);
        std::vector<std::int64_t> segments;
        for (std::int64_t done = 0; done < total; done += 1000000) {
            segments.push_back(1000000);
        }
        return segments;
    }
    [[nodiscard]] sim::ExitOutcome evaluate(int, int) override {
        return {true, 1.0};
    }
    [[nodiscard]] double model_bytes() const override { return 0.0; }
};

/// Model that does NOT override segment_macs, to pin the default.
class OpaqueModel final : public sim::InferenceModel {
public:
    [[nodiscard]] int num_exits() const override { return 2; }
    [[nodiscard]] std::int64_t exit_macs(int exit) const override {
        return exit == 0 ? 400000 : 900000;
    }
    [[nodiscard]] std::int64_t incremental_macs(int from_exit,
                                                int to_exit) const override {
        return exit_macs(to_exit) - (from_exit < 0 ? 0 : exit_macs(from_exit));
    }
    [[nodiscard]] sim::ExitOutcome evaluate(int, int) override {
        return {true, 1.0};
    }
    [[nodiscard]] double model_bytes() const override { return 0.0; }
};

/// Commits to a fixed exit immediately and never advances incrementally.
class PinnedExitPolicy final : public sim::ExitPolicy {
public:
    explicit PinnedExitPolicy(int exit) : exit_(exit) {}
    int select_exit(const sim::EnergyState&,
                    const sim::InferenceModel&) override {
        return exit_;
    }
    bool continue_inference(const sim::EnergyState&,
                            const sim::InferenceModel&, int, double) override {
        return false;
    }

private:
    int exit_;
};

/// Never commits: the device must stay asleep (and deathless) forever.
class NeverCommitPolicy final : public sim::ExitPolicy {
public:
    int select_exit(const sim::EnergyState&,
                    const sim::InferenceModel&) override {
        return -1;
    }
    bool continue_inference(const sim::EnergyState&,
                            const sim::InferenceModel&, int, double) override {
        return false;
    }
};

/// 10 s of darkness (the job starts on stored energy, stalls, and — with a
/// death threshold — dies), then 50 s at 0.5 mW to recover and finish.
energy::PowerTrace dark_then_bright() {
    std::vector<double> samples(10, 0.0);
    samples.insert(samples.end(), 50, 0.5);
    return energy::PowerTrace(1.0, std::move(samples));
}

/// All energies are multiples of 1/32 mJ so every step is exact in binary:
/// initial 2.0 covers exactly one 1.5 mJ unit plus leakage, and the
/// 0.0625 mW leakage then drags the stalled device to the 0.03125 mJ death
/// threshold at a deterministic step.
sim::SimConfig exact_config(const sim::RecoveryConfig& recovery,
                            double death_threshold_mj) {
    sim::SimConfig cfg;
    cfg.mode = sim::ExecutionMode::kMultiExit;
    cfg.dt_s = 1.0;
    cfg.storage.capacity_mj = 16.0;
    cfg.storage.initial_mj = 2.0;
    cfg.storage.leakage_mw = 0.0625;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;
    cfg.storage.on_threshold_mj = 0.03125;
    cfg.storage.off_threshold_mj = 0.015625;
    cfg.storage.death_threshold_mj = death_threshold_mj;
    cfg.mcu.wakeup_energy_mj = 0.0;
    cfg.mcu.wakeup_time_s = 0.0;
    cfg.mcu.mmacs_per_second = 10.0;
    cfg.recovery = recovery;
    return cfg;
}

sim::RecoveryConfig zero_cost(const std::string& strategy,
                              sim::CheckpointGranularity granularity) {
    sim::RecoveryConfig rec;
    rec.enabled = true;
    rec.strategy = strategy;
    rec.granularity = granularity;
    rec.checkpoint_energy_mj = 0.0;
    rec.restore_energy_mj = 0.0;
    rec.restore_penalty_mj = 0.0;
    rec.active_power_mw = 0.0;
    return rec;
}

sim::SimResult run_exact(const sim::SimConfig& cfg) {
    const auto trace = dark_then_bright();
    sim::Simulator simulator(trace, cfg);
    LadderModel model;
    PinnedExitPolicy policy(1);
    return simulator.run(std::vector<sim::Event>{{0, 1.0}}, model, policy);
}

void expect_records_bitwise_equal(const sim::SimResult& a,
                                  const sim::SimResult& b) {
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const auto& ra = a.records[i];
        const auto& rb = b.records[i];
        EXPECT_EQ(ra.event_id, rb.event_id);
        EXPECT_EQ(ra.arrival_time_s, rb.arrival_time_s);
        EXPECT_EQ(ra.processed, rb.processed);
        EXPECT_EQ(ra.correct, rb.correct);
        EXPECT_EQ(ra.exit_taken, rb.exit_taken);
        EXPECT_EQ(ra.hops, rb.hops);
        EXPECT_EQ(ra.completion_time_s, rb.completion_time_s);
        EXPECT_EQ(ra.inference_start_s, rb.inference_start_s);
        EXPECT_EQ(ra.energy_spent_mj, rb.energy_spent_mj);
        EXPECT_EQ(ra.macs, rb.macs);
    }
}

// --- Strategy registry -----------------------------------------------------

TEST(RecoveryRegistry, BuiltInsAreRegistered) {
    for (const char* name : {"restart", "checkpoint", "checkpoint-free"}) {
        EXPECT_TRUE(sim::has_recovery_strategy(name)) << name;
        EXPECT_FALSE(sim::recovery_strategy_description(name).empty()) << name;
    }
    const auto names = sim::recovery_strategy_names();
    EXPECT_GE(names.size(), 3u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RecoveryRegistry, BuiltInSemantics) {
    sim::RecoveryConfig cfg;
    cfg.checkpoint_energy_mj = 0.25;
    cfg.restore_energy_mj = 0.125;
    cfg.restore_penalty_mj = 0.0625;

    const auto restart = sim::make_recovery_strategy("restart", cfg);
    EXPECT_EQ(restart->commit_cost_mj(), 0.0);
    EXPECT_EQ(restart->surviving_units(5), 0);
    EXPECT_EQ(restart->restore_cost_mj(0), 0.0);

    const auto ckpt = sim::make_recovery_strategy("checkpoint", cfg);
    EXPECT_EQ(ckpt->commit_cost_mj(), 0.25);
    EXPECT_EQ(ckpt->surviving_units(5), 5);
    EXPECT_EQ(ckpt->restore_cost_mj(3), 0.125);

    const auto free = sim::make_recovery_strategy("checkpoint-free", cfg);
    EXPECT_EQ(free->commit_cost_mj(), 0.0);
    EXPECT_EQ(free->surviving_units(7), 7);
    EXPECT_EQ(free->restore_cost_mj(4), 4 * 0.0625);
}

TEST(RecoveryRegistry, UnknownNameListsEveryRegisteredStrategy) {
    try {
        (void)sim::make_recovery_strategy("no-such-strategy");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no-such-strategy"), std::string::npos);
        EXPECT_NE(what.find("restart"), std::string::npos);
        EXPECT_NE(what.find("checkpoint-free"), std::string::npos);
    }
}

TEST(RecoveryRegistry, NegativeCostParametersAreRejected) {
    sim::RecoveryConfig cfg;
    cfg.checkpoint_energy_mj = -0.1;
    try {
        (void)sim::make_recovery_strategy("checkpoint", cfg);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("non-negative"),
                  std::string::npos);
    }
}

TEST(RecoveryRegistry, CustomStrategiesRegisterAndResolve) {
    class KeepHalf final : public sim::RecoveryStrategy {
    public:
        [[nodiscard]] double commit_cost_mj() const override { return 0.0; }
        [[nodiscard]] int surviving_units(int committed) const override {
            return committed / 2;
        }
        [[nodiscard]] double restore_cost_mj(int) const override {
            return 0.0;
        }
    };
    sim::register_recovery_strategy(
        "test-keep-half",
        [](const sim::RecoveryConfig&) { return std::make_unique<KeepHalf>(); },
        "keeps the older half of committed units");
    EXPECT_TRUE(sim::has_recovery_strategy("test-keep-half"));
    EXPECT_EQ(sim::recovery_strategy_description("test-keep-half"),
              "keeps the older half of committed units");
    const auto strategy = sim::make_recovery_strategy("test-keep-half");
    EXPECT_EQ(strategy->surviving_units(5), 2);
}

// --- Plan construction -----------------------------------------------------

TEST(RecoveryUnits, GranularityParsesAndRoundTrips) {
    EXPECT_EQ(sim::parse_granularity("layer"),
              sim::CheckpointGranularity::kPerLayer);
    EXPECT_EQ(sim::parse_granularity("exit"),
              sim::CheckpointGranularity::kPerExit);
    EXPECT_EQ(sim::granularity_name(sim::CheckpointGranularity::kPerLayer),
              "layer");
    EXPECT_EQ(sim::granularity_name(sim::CheckpointGranularity::kPerExit),
              "exit");
    EXPECT_THROW((void)sim::parse_granularity("segment"),
                 std::invalid_argument);
}

TEST(RecoveryUnits, PlansSumToIncrementalMacsOnThePaperNetwork) {
    const auto desc = core::make_paper_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    core::OracleInferenceModel model(desc, policy, {60.0, 70.0, 73.0});
    for (int from = -1; from < model.num_exits(); ++from) {
        for (int to = std::max(from, 0); to < model.num_exits(); ++to) {
            if (to <= from) continue;
            for (const auto granularity :
                 {sim::CheckpointGranularity::kPerLayer,
                  sim::CheckpointGranularity::kPerExit}) {
                const auto units =
                    sim::recovery_units(model, from, to, granularity);
                ASSERT_FALSE(units.empty());
                std::int64_t sum = 0;
                for (const auto unit : units) {
                    EXPECT_GT(unit, 0);
                    sum += unit;
                }
                EXPECT_EQ(sum, model.incremental_macs(from, to))
                    << from << "->" << to;
            }
        }
    }
}

TEST(RecoveryUnits, PerExitIsNoFinerThanPerLayer) {
    const auto desc = core::make_paper_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    core::OracleInferenceModel model(desc, policy, {60.0, 70.0, 73.0});
    const int last = model.num_exits() - 1;
    const auto per_layer = sim::recovery_units(
        model, -1, last, sim::CheckpointGranularity::kPerLayer);
    const auto per_exit = sim::recovery_units(
        model, -1, last, sim::CheckpointGranularity::kPerExit);
    EXPECT_LE(per_exit.size(), per_layer.size());
    // One boundary per trunk junction passed: the full path crosses every
    // earlier exit, so the per-exit plan has one unit per exit.
    EXPECT_EQ(per_exit.size(), static_cast<std::size_t>(model.num_exits()));
}

TEST(RecoveryUnits, SegmentMacsSumsMatchIncrementalOnTheOracle) {
    const auto desc = core::make_paper_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    core::OracleInferenceModel model(desc, policy, {60.0, 70.0, 73.0});
    for (int from = -1; from < model.num_exits() - 1; ++from) {
        for (int to = from + 1; to < model.num_exits(); ++to) {
            if (to < 0) continue;
            const auto segments = model.segment_macs(from, to);
            std::int64_t sum = 0;
            for (const auto macs : segments) sum += macs;
            EXPECT_EQ(sum, model.incremental_macs(from, to))
                << from << "->" << to;
        }
    }
}

TEST(RecoveryUnits, DefaultSegmentMacsIsOneOpaqueSegment) {
    OpaqueModel model;
    const auto segments = model.segment_macs(-1, 1);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0], model.incremental_macs(-1, 1));
    // recovery_units degrades gracefully: per-layer over an opaque model is
    // one unit; per-exit still cuts at the trunk junction.
    const auto per_layer = sim::recovery_units(
        model, -1, 1, sim::CheckpointGranularity::kPerLayer);
    ASSERT_EQ(per_layer.size(), 1u);
    EXPECT_EQ(per_layer[0], 900000);
    const auto per_exit = sim::recovery_units(
        model, -1, 1, sim::CheckpointGranularity::kPerExit);
    ASSERT_EQ(per_exit.size(), 2u);
    EXPECT_EQ(per_exit[0], 400000);
    EXPECT_EQ(per_exit[1], 500000);
}

// --- Simulator: inertness when disabled ------------------------------------

TEST(RecoverySim, DisabledFailureModelIsBitwiseInert) {
    const auto trace =
        energy::PowerTrace::square_wave(0.5, 40.0, 0.5, 400.0, 1.0);
    const auto desc = core::make_paper_network_desc();
    const auto compression = compress::Policy::full_precision(desc.num_layers());
    const std::vector<sim::Event> events = {{0, 5.0}, {1, 90.0}, {2, 210.0}};

    sim::SimConfig plain;
    plain.storage.initial_mj = 2.0;
    auto raised = plain;
    raised.storage.death_threshold_mj = 0.04;  // no effect while disabled

    core::OracleInferenceModel model_a(desc, compression, {60.0, 70.0, 73.0});
    sim::GreedyAffordablePolicy policy_a;
    const auto a = sim::Simulator(trace, plain).run(events, model_a, policy_a);

    core::OracleInferenceModel model_b(desc, compression, {60.0, 70.0, 73.0});
    sim::GreedyAffordablePolicy policy_b;
    const auto b = sim::Simulator(trace, raised).run(events, model_b, policy_b);

    expect_records_bitwise_equal(a, b);
    EXPECT_EQ(a.deaths, 0);
    EXPECT_EQ(a.recovery_energy_mj, 0.0);
    EXPECT_EQ(a.wasted_macs, 0);
    EXPECT_EQ(b.deaths, 0);
}

// --- Simulator: the zero-cost-checkpoint theorem ---------------------------

TEST(RecoverySim, ZeroCostCheckpointDeathIsBitwiseInvisible) {
    const auto rec = zero_cost("checkpoint",
                               sim::CheckpointGranularity::kPerLayer);
    const auto with_death = run_exact(exact_config(rec, 0.03125));
    const auto no_death = run_exact(exact_config(rec, 0.0));

    EXPECT_EQ(with_death.deaths, 1);
    EXPECT_EQ(no_death.deaths, 0);
    expect_records_bitwise_equal(with_death, no_death);
    ASSERT_TRUE(with_death.records[0].processed);
    EXPECT_EQ(with_death.records[0].macs, 3000000);
    EXPECT_EQ(with_death.wasted_macs, 0);
    EXPECT_EQ(with_death.recovery_energy_mj, 0.0);
    EXPECT_TRUE(with_death.energy_feasible(2.0));
}

TEST(RecoverySim, ZeroCostCheckpointFreeDeathIsBitwiseInvisible) {
    const auto rec = zero_cost("checkpoint-free",
                               sim::CheckpointGranularity::kPerLayer);
    const auto with_death = run_exact(exact_config(rec, 0.03125));
    const auto no_death = run_exact(exact_config(rec, 0.0));
    EXPECT_EQ(with_death.deaths, 1);
    EXPECT_EQ(no_death.deaths, 0);
    expect_records_bitwise_equal(with_death, no_death);
}

// --- Simulator: restart divergence and exact accounting --------------------

TEST(RecoverySim, RestartLosesExactlyTheCommittedUnits) {
    const auto rec =
        zero_cost("restart", sim::CheckpointGranularity::kPerLayer);
    const auto result = run_exact(exact_config(rec, 0.03125));
    EXPECT_EQ(result.deaths, 1);
    // One 1-MMAC unit was committed before the death and had to be redone.
    EXPECT_EQ(result.wasted_macs, 1000000);
    ASSERT_TRUE(result.records[0].processed);
    // Conservation: every executed MAC is either useful or wasted.
    EXPECT_EQ(result.records[0].macs,
              3000000 + result.wasted_macs);
    // The redo makes the restart run strictly slower than checkpointing.
    const auto ckpt = run_exact(exact_config(
        zero_cost("checkpoint", sim::CheckpointGranularity::kPerLayer),
        0.03125));
    EXPECT_GT(result.records[0].completion_time_s,
              ckpt.records[0].completion_time_s);
}

TEST(RecoverySim, FinerCheckpointingNeverWastesMore) {
    const auto wasted = [](sim::CheckpointGranularity granularity,
                           const char* strategy) {
        return run_exact(
                   exact_config(zero_cost(strategy, granularity), 0.03125))
            .wasted_macs;
    };
    const auto layer = wasted(sim::CheckpointGranularity::kPerLayer,
                              "checkpoint");
    const auto exit = wasted(sim::CheckpointGranularity::kPerExit,
                             "checkpoint");
    const auto restart = wasted(sim::CheckpointGranularity::kPerLayer,
                                "restart");
    EXPECT_LE(layer, exit);
    EXPECT_LE(exit, restart);
    EXPECT_GT(restart, 0);
}

TEST(RecoverySim, CommitAndRestoreCostsAreAccountedExactly) {
    // Abundant energy: no deaths, so recovery energy is purely the three
    // per-unit checkpoint commits.
    auto rec = zero_cost("checkpoint", sim::CheckpointGranularity::kPerLayer);
    rec.checkpoint_energy_mj = 0.25;
    rec.restore_energy_mj = 0.125;
    auto cfg = exact_config(rec, 0.03125);
    cfg.storage.initial_mj = 16.0;
    const auto trace = energy::PowerTrace::constant(1.0, 60.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    LadderModel model;
    PinnedExitPolicy policy(1);
    const auto result = simulator.run(std::vector<sim::Event>{{0, 1.0}}, model, policy);
    ASSERT_TRUE(result.records[0].processed);
    EXPECT_EQ(result.deaths, 0);
    EXPECT_EQ(result.recovery_energy_mj, 3 * 0.25);
    // Commits are runtime overhead, not inference energy.
    EXPECT_EQ(result.records[0].energy_spent_mj, 3 * 1.5);
    EXPECT_EQ(result.records[0].hops, 1);
}

TEST(RecoverySim, RestorePenaltyIsChargedPerSurvivingUnit) {
    auto rec =
        zero_cost("checkpoint-free", sim::CheckpointGranularity::kPerLayer);
    rec.restore_penalty_mj = 0.25;
    const auto result = run_exact(exact_config(rec, 0.03125));
    ASSERT_TRUE(result.records[0].processed);
    EXPECT_EQ(result.deaths, 1);
    // One unit survived the single death: one reboot at 1 x 0.25 mJ.
    EXPECT_EQ(result.recovery_energy_mj, 0.25);
    EXPECT_EQ(result.wasted_macs, 0);
}

// --- Simulator: death preconditions ----------------------------------------

TEST(RecoverySim, ActivePowerDrawDrivesDeathWhileStalled) {
    auto rec = zero_cost("restart", sim::CheckpointGranularity::kPerLayer);
    rec.active_power_mw = 0.2;
    auto cfg = exact_config(rec, 0.03125);
    cfg.storage.leakage_mw = 0.0;  // the active draw is the only force
    const auto trace = dark_then_bright();
    sim::Simulator simulator(trace, cfg);
    LadderModel model;
    PinnedExitPolicy policy(1);
    const auto result = simulator.run(std::vector<sim::Event>{{0, 1.0}}, model, policy);
    EXPECT_GE(result.deaths, 1);
    EXPECT_GT(result.wasted_macs, 0);

    // Same scenario without the draw: the stall outlasts the darkness.
    auto quiet_rec = rec;
    quiet_rec.active_power_mw = 0.0;
    auto quiet = exact_config(quiet_rec, 0.03125);
    quiet.storage.leakage_mw = 0.0;
    sim::Simulator quiet_sim(trace, quiet);
    LadderModel quiet_model;
    PinnedExitPolicy quiet_policy(1);
    const auto alive = quiet_sim.run(std::vector<sim::Event>{{0, 1.0}}, quiet_model, quiet_policy);
    EXPECT_EQ(alive.deaths, 0);
    ASSERT_TRUE(alive.records[0].processed);
}

TEST(RecoverySim, NoDeathBeforeTheFirstUnitStarts) {
    // An uncommitted (or committed-but-never-started) job leaves the device
    // asleep: no active draw, no death, exactly like the historical wait.
    auto rec = zero_cost("restart", sim::CheckpointGranularity::kPerLayer);
    rec.active_power_mw = 5.0;
    auto cfg = exact_config(rec, 0.03125);
    const auto trace = energy::PowerTrace::constant(0.0, 20.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    LadderModel model;
    NeverCommitPolicy policy;
    const auto result = simulator.run(std::vector<sim::Event>{{0, 1.0}}, model, policy);
    EXPECT_EQ(result.deaths, 0);
    EXPECT_FALSE(result.records[0].processed);
}

TEST(RecoverySim, ZeroDeathThresholdNeverFires) {
    auto rec = zero_cost("restart", sim::CheckpointGranularity::kPerLayer);
    rec.active_power_mw = 1.0;
    const auto result = run_exact(exact_config(rec, 0.0));
    EXPECT_EQ(result.deaths, 0);
}

TEST(RecoverySim, ContractsRejectInvalidRecoverySetups) {
    const auto trace = energy::PowerTrace::constant(1.0, 10.0, 1.0);
    // The failure model replaces the multi-exit path only.
    auto cfg = exact_config(
        zero_cost("restart", sim::CheckpointGranularity::kPerLayer), 0.03125);
    cfg.mode = sim::ExecutionMode::kCheckpointed;
    EXPECT_THROW(sim::Simulator(trace, cfg), util::ContractViolation);
    // A reboot waits for on_threshold, so it must not sit below death.
    auto low = exact_config(
        zero_cost("restart", sim::CheckpointGranularity::kPerLayer), 0.03125);
    low.storage.on_threshold_mj = 0.015625;
    EXPECT_THROW(sim::Simulator(trace, low), util::ContractViolation);
    // The storage validates the threshold itself.
    energy::StorageConfig storage;
    storage.death_threshold_mj = -0.1;
    EXPECT_THROW(energy::EnergyStorage{storage}, util::ContractViolation);
    storage.death_threshold_mj = storage.capacity_mj + 1.0;
    EXPECT_THROW(energy::EnergyStorage{storage}, util::ContractViolation);
}

// --- Metrics plumbing ------------------------------------------------------

TEST(RecoveryMetrics, SimMetricsExposesTheRecoveryColumns) {
    sim::SimResult result;
    result.total_harvested_mj = 1.0;
    result.deaths = 3;
    result.recovery_energy_mj = 1.5;
    result.wasted_macs = 2000000;
    const auto metrics = exp::sim_metrics(result);
    EXPECT_EQ(metrics.at("deaths"), 3.0);
    EXPECT_EQ(metrics.at("recovery_mj"), 1.5);
    EXPECT_EQ(metrics.at("wasted_macs_m"), 2.0);
}

// --- exp::recovery_patch ---------------------------------------------------

TEST(RecoveryPatch, DerivesLabelsAndDims) {
    const auto none = exp::recovery_patch({});
    EXPECT_EQ(none.label, "rec-none");
    EXPECT_EQ(none.dims.at("recovery"), "none");

    exp::RecoveryCell ckpt;
    ckpt.config.enabled = true;
    ckpt.config.strategy = "checkpoint";
    ckpt.config.granularity = sim::CheckpointGranularity::kPerExit;
    EXPECT_EQ(exp::recovery_patch(ckpt).label, "rec-checkpoint-exit");

    exp::RecoveryCell restart;
    restart.config.enabled = true;
    restart.config.strategy = "restart";
    EXPECT_EQ(exp::recovery_patch(restart).label, "rec-restart");

    exp::RecoveryCell labeled = ckpt;
    labeled.label = "custom";
    const auto patch = exp::recovery_patch(labeled);
    EXPECT_EQ(patch.label, "rec-custom");
    EXPECT_EQ(patch.dims.at("recovery"), "custom");
}

TEST(RecoveryPatch, AppliesToMultiExitOnlyAndSetsTheDeathThreshold) {
    exp::RecoveryCell cell;
    cell.config.enabled = true;
    cell.config.strategy = "checkpoint";
    cell.death_threshold_mj = 0.25;
    const auto patch = exp::recovery_patch(cell);

    sim::SimConfig multi_exit;
    patch.apply(multi_exit);
    EXPECT_TRUE(multi_exit.recovery.enabled);
    EXPECT_EQ(multi_exit.recovery.strategy, "checkpoint");
    EXPECT_EQ(multi_exit.storage.death_threshold_mj, 0.25);

    // Checkpointed baselines model their own intrinsic checkpointing and
    // must pass through a crossed cell untouched.
    sim::SimConfig baseline;
    baseline.mode = sim::ExecutionMode::kCheckpointed;
    const double before = baseline.storage.death_threshold_mj;
    patch.apply(baseline);
    EXPECT_FALSE(baseline.recovery.enabled);
    EXPECT_EQ(baseline.storage.death_threshold_mj, before);
}

TEST(RecoveryPatch, ValidatesAtConstruction) {
    exp::RecoveryCell unknown;
    unknown.config.enabled = true;
    unknown.config.strategy = "no-such-strategy";
    EXPECT_THROW((void)exp::recovery_patch(unknown), std::invalid_argument);

    // A death threshold on a disabled cell could never take effect.
    exp::RecoveryCell disabled;
    disabled.death_threshold_mj = 0.25;
    EXPECT_THROW((void)exp::recovery_patch(disabled),
                 util::ContractViolation);
}

// --- Spec sections and round-trips -----------------------------------------

std::string valid_spec() {
    return "[sweep]\n"
           "name = t\n"
           "[system]\n"
           "label = s\n"
           "kind = ours-policy\n"
           "policy = greedy\n";
}

void expect_parse_error(const std::string& text, const std::string& needle) {
    try {
        (void)exp::parse_experiment_spec(text, "spec.ini");
        FAIL() << "expected failure containing '" << needle << "'";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(RecoverySpec, SectionsParseIntoRecoveryCells) {
    const auto spec = exp::parse_experiment_spec(
        valid_spec() + "[recovery.base]\nstrategy = none\n"
                       "[recovery.nvm]\nstrategy = checkpoint\n"
                       "granularity = exit\ncheckpoint_mj = 0.5\n"
                       "restore_mj = 0.25\nactive_power_mw = 0.1\n"
                       "death_threshold_mj = 0.3\n");
    ASSERT_EQ(spec.recoveries.size(), 2u);
    EXPECT_EQ(spec.recoveries[0].label, "base");
    EXPECT_FALSE(spec.recoveries[0].config.enabled);
    EXPECT_EQ(spec.recoveries[1].label, "nvm");
    EXPECT_TRUE(spec.recoveries[1].config.enabled);
    EXPECT_EQ(spec.recoveries[1].config.strategy, "checkpoint");
    EXPECT_EQ(spec.recoveries[1].config.granularity,
              sim::CheckpointGranularity::kPerExit);
    EXPECT_EQ(spec.recoveries[1].config.checkpoint_energy_mj, 0.5);
    EXPECT_EQ(spec.recoveries[1].config.restore_energy_mj, 0.25);
    EXPECT_EQ(spec.recoveries[1].config.active_power_mw, 0.1);
    EXPECT_EQ(spec.recoveries[1].death_threshold_mj, 0.3);
}

TEST(RecoverySpec, RejectsSchemaMistakesWithFileLineDiagnostics) {
    expect_parse_error(valid_spec() + "[recovery.x]\ngranularity = layer\n",
                       "requires 'strategy");
    expect_parse_error(valid_spec() + "[recovery.x]\nstrategy = nuclear\n",
                       "unknown recovery strategy 'nuclear'");
    expect_parse_error(
        valid_spec() + "[recovery.x]\nstrategy = checkpoint\n"
                       "granularity = everywhere\n",
        "granularity");
    expect_parse_error(
        valid_spec() + "[recovery.x]\nstrategy = restart\nwrite_mj = 1\n",
        "unknown key 'write_mj'");
    expect_parse_error(
        valid_spec() + "[recovery.x]\nstrategy = none\n"
                       "death_threshold_mj = 0.3\n",
        "no effect with 'strategy = none'");
    expect_parse_error(
        valid_spec() + "[recovery.x]\nstrategy = checkpoint\n"
                       "checkpoint_mj = -1\n",
        "non-negative");
    expect_parse_error(valid_spec() + "[recovery.x]\nstrategy = restart\n"
                                      "[recovery.x]\nstrategy = none\n",
                       "duplicate recovery label 'x'");
    expect_parse_error(valid_spec() + "[recovery.]\nstrategy = restart\n",
                       "requires a label after the dot");
}

TEST(RecoverySpec, BaselineSystemsCannotCrossARecoveryAxis) {
    const auto spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = sonic\n"
        "[recovery.r]\nstrategy = restart\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);
}

TEST(RecoverySpec, RegisteredExperimentExpandsTheFullGrid) {
    ASSERT_TRUE(exp::has_experiment("recovery-ablation"));
    EXPECT_FALSE(exp::experiment_description("recovery-ablation").empty());
    const auto experiment = exp::make_experiment("recovery-ablation");
    const auto specs = exp::build_experiment_scenarios(experiment, {});
    // 2 traces x 1 system x 2 deadlines x 5 recovery cells.
    ASSERT_EQ(specs.size(), 20u);
    EXPECT_EQ(specs[0].dims.at("recovery"), "none");
    EXPECT_NE(specs[0].id.find("rec-none"), std::string::npos);
    bool saw_restart = false;
    for (const auto& spec : specs) {
        saw_restart = saw_restart || spec.dims.at("recovery") == "restart";
    }
    EXPECT_TRUE(saw_restart);
}

TEST(RecoverySpec, SpecFileRoundTripsTheRegisteredExperiment) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/recovery_ablation.ini");
    EXPECT_EQ(spec.name, "recovery-ablation");
    ASSERT_EQ(spec.recoveries.size(), 5u);

    for (const bool quick : {false, true}) {
        exp::SweepCli cli;
        cli.quick = quick;
        cli.replicas = 2;
        cli.replicas_given = true;
        const auto from_spec = exp::expand_experiment(spec, cli);
        const auto from_registry = exp::build_experiment_scenarios(
            exp::make_experiment("recovery-ablation"), cli);
        ASSERT_EQ(from_spec.size(), from_registry.size());
        for (std::size_t i = 0; i < from_spec.size(); ++i) {
            EXPECT_EQ(from_spec[i].id, from_registry[i].id);
            EXPECT_EQ(from_spec[i].group, from_registry[i].group);
            EXPECT_EQ(from_spec[i].dims, from_registry[i].dims);
            EXPECT_EQ(from_spec[i].replica, from_registry[i].replica);
            EXPECT_EQ(from_spec[i].seed, from_registry[i].seed);
        }
    }
}

// --- Thread and shard invariance of the new metrics ------------------------

std::vector<exp::ScenarioSpec> mini_recovery_grid() {
    const auto spec = exp::parse_experiment_spec(
        "[sweep]\n"
        "name = rec-mini\n"
        "metrics = deaths, wasted_macs_m, recovery_mj, processed\n"
        "[trace]\n"
        "label = tr\n"
        "duration_s = 600\n"
        "event_count = 12\n"
        "total_harvest_mj = 40\n"
        "[system]\n"
        "label = s\n"
        "kind = ours-policy\n"
        "policy = greedy\n"
        "[recovery.none]\n"
        "strategy = none\n"
        "[recovery.restart]\n"
        "strategy = restart\n"
        "active_power_mw = 0.02\n"
        "death_threshold_mj = 0.3\n"
        "[recovery.ckpt]\n"
        "strategy = checkpoint\n"
        "granularity = exit\n"
        "active_power_mw = 0.02\n"
        "death_threshold_mj = 0.3\n");
    return exp::expand_experiment(spec, {});
}

TEST(RecoveryInvariance, MetricsAreIdenticalForAnyThreadCount) {
    const auto specs = mini_recovery_grid();
    ASSERT_EQ(specs.size(), 3u);
    const auto serial = exp::run_sweep(specs, {1});
    const auto parallel = exp::run_sweep(specs, {3});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << specs[i].id;
        EXPECT_EQ(serial[i].metrics.count("deaths"), 1u);
        EXPECT_EQ(serial[i].metrics.count("wasted_macs_m"), 1u);
        EXPECT_EQ(serial[i].metrics.count("recovery_mj"), 1u);
    }
    // The failure-free baseline cell reports a quiet run; the restart cell
    // is the one modeling real intermittency.
    EXPECT_EQ(serial[0].metrics.at("deaths"), 0.0);
    EXPECT_EQ(serial[0].metrics.at("recovery_mj"), 0.0);
}

TEST(RecoveryInvariance, MetricsSurviveShardJournalAndMergeByteExactly) {
    const auto specs = mini_recovery_grid();
    const auto full = exp::run_sweep(specs, {2});

    const auto header_for = [&](const exp::ShardSpec& shard) {
        exp::JournalHeader header;
        header.experiment = "rec-mini";
        header.total_specs = specs.size();
        header.shard = shard;
        header.base_seed = exp::kDefaultBaseSeed;
        header.replicas = 1;
        return header;
    };
    std::vector<std::string> paths;
    for (int i = 0; i < 2; ++i) {
        const std::string path = ::testing::TempDir() + "imx_recovery_shard_" +
                                 std::to_string(i) + ".jsonl";
        (void)exp::run_shard(specs, header_for({i, 2}), {1}, path,
                             /*resume=*/false);
        paths.push_back(path);
    }
    const auto merged =
        exp::merge_journal_outcomes(header_for({0, 1}), specs, paths);
    ASSERT_EQ(merged.size(), full.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        // Bit-exact through the %.17g journal round-trip, including the
        // recovery columns.
        EXPECT_EQ(merged[i].metrics, full[i].metrics) << specs[i].id;
    }
}

}  // namespace
