// Energy substrate tests: traces, solar generator, capacitor storage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "energy/power_trace.hpp"
#include "energy/solar.hpp"
#include "energy/storage.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;
using energy::PowerTrace;

TEST(PowerTrace, ConstantTraceIntegrals) {
    const PowerTrace t = PowerTrace::constant(2.0, 100.0, 1.0);
    EXPECT_NEAR(t.total_energy(), 200.0, 1e-9);
    EXPECT_NEAR(t.mean_power(), 2.0, 1e-9);
    EXPECT_NEAR(t.energy_between(10.0, 20.0), 20.0, 1e-9);
    EXPECT_NEAR(t.energy_between(10.5, 10.75), 0.5, 1e-9);
    EXPECT_EQ(t.power_at(50.0), 2.0);
    EXPECT_EQ(t.power_at(1000.0), 0.0);
    EXPECT_EQ(t.power_at(-1.0), 0.0);
}

TEST(PowerTrace, EnergyBetweenIsAdditive) {
    const PowerTrace t = PowerTrace::square_wave(3.0, 10.0, 0.5, 100.0, 1.0);
    const double whole = t.energy_between(0.0, 100.0);
    const double split = t.energy_between(0.0, 37.3) + t.energy_between(37.3, 100.0);
    EXPECT_NEAR(whole, split, 1e-9);
    EXPECT_NEAR(whole, t.total_energy(), 1e-9);
}

TEST(PowerTrace, SquareWaveDutyCycle) {
    // dt must divide the duty window for the energy to be exact.
    const PowerTrace t = PowerTrace::square_wave(4.0, 10.0, 0.25, 100.0, 0.5);
    EXPECT_NEAR(t.total_energy(), 4.0 * 100.0 * 0.25, 1e-6);
    EXPECT_EQ(t.power_at(0.5), 4.0);
    EXPECT_EQ(t.power_at(5.0), 0.0);
}

TEST(PowerTrace, RescaleHitsTarget) {
    PowerTrace t = PowerTrace::constant(1.0, 50.0, 1.0);
    t.rescale_total_energy(123.0);
    EXPECT_NEAR(t.total_energy(), 123.0, 1e-9);
}

TEST(PowerTrace, RejectsNegativePower) {
    EXPECT_THROW(PowerTrace(1.0, {1.0, -0.5}), util::ContractViolation);
    EXPECT_THROW(PowerTrace(0.0, {1.0}), util::ContractViolation);
}

TEST(PowerTrace, CsvRoundTrip) {
    const std::string path = "/tmp/imx_trace_test.csv";
    {
        util::CsvWriter w(path);
        w.write_header({"time_s", "power_mw"});
        for (int i = 0; i < 10; ++i) {
            w.write_row(std::vector<double>{static_cast<double>(i), 0.5 * i});
        }
    }
    const PowerTrace t = PowerTrace::from_csv(path);
    EXPECT_EQ(t.size(), 10u);
    EXPECT_NEAR(t.power_at(4.5), 2.0, 1e-9);
    std::remove(path.c_str());
}

TEST(Solar, DeterministicNonNegativeAndDiurnal) {
    energy::SolarConfig cfg;
    cfg.days = 1.0;
    cfg.dt_s = 60.0;
    cfg.seed = 5;
    const PowerTrace a = energy::make_solar_trace(cfg);
    const PowerTrace b = energy::make_solar_trace(cfg);
    EXPECT_EQ(a.samples(), b.samples());
    for (const double p : a.samples()) EXPECT_GE(p, 0.0);
    // Night (first samples, before 6 am) is dark.
    EXPECT_EQ(a.power_at(0.0), 0.0);
    EXPECT_EQ(a.power_at(3600.0), 0.0);
    // Noon is bright.
    EXPECT_GT(a.power_at(12.0 * 3600.0), 0.2 * cfg.peak_power_mw);
}

TEST(Solar, PeakNeverExceedsConfiguredPeak) {
    energy::SolarConfig cfg;
    cfg.dt_s = 30.0;
    cfg.peak_power_mw = 1.5;
    const PowerTrace t = energy::make_solar_trace(cfg);
    EXPECT_LE(*std::max_element(t.samples().begin(), t.samples().end()),
              cfg.peak_power_mw + 1e-9);
}

TEST(Solar, DaylightWindowCoversWholeTrace) {
    energy::SolarConfig cfg;
    cfg.window_start_hour = cfg.sunrise_hour;
    cfg.window_end_hour = cfg.sunset_hour;
    cfg.dt_s = 10.0;
    const PowerTrace t = energy::make_solar_trace(cfg);
    EXPECT_NEAR(t.duration(), 12.0 * 3600.0, 15.0);
    // Mid-trace (solar noon) should carry substantial power.
    EXPECT_GT(t.power_at(t.duration() / 2.0), 0.3 * cfg.peak_power_mw);
}

TEST(Solar, TimeCompressionShortensDuration) {
    energy::SolarConfig cfg;
    cfg.dt_s = 1.0;
    cfg.time_compression = 8.0;
    const PowerTrace t = energy::make_solar_trace(cfg);
    EXPECT_NEAR(t.duration(), 86400.0 / 8.0, 2.0);
}

TEST(Solar, CloudsCreateVariability) {
    energy::SolarConfig cfg;
    cfg.dt_s = 10.0;
    cfg.window_start_hour = 10.0;
    cfg.window_end_hour = 14.0;  // near-constant clear-sky envelope
    cfg.cloud_sigma = 0.15;
    const PowerTrace cloudy = energy::make_solar_trace(cfg);
    cfg.cloud_sigma = 0.0;
    cfg.cloud_theta = 1.0;  // pin attenuation at clear sky
    const PowerTrace clear = energy::make_solar_trace(cfg);
    double var_cloudy = 0.0;
    double var_clear = 0.0;
    const double mean_cloudy = cloudy.mean_power();
    const double mean_clear = clear.mean_power();
    for (std::size_t i = 0; i < cloudy.size(); ++i) {
        var_cloudy += (cloudy.samples()[i] - mean_cloudy) *
                      (cloudy.samples()[i] - mean_cloudy);
        var_clear +=
            (clear.samples()[i] - mean_clear) * (clear.samples()[i] - mean_clear);
    }
    EXPECT_GT(var_cloudy, var_clear);
}

TEST(Storage, HarvestConservesEnergyWithEfficiency) {
    energy::StorageConfig cfg;
    cfg.capacity_mj = 10.0;
    cfg.initial_mj = 0.0;
    cfg.leakage_mw = 0.0;
    cfg.efficiency_max = 0.8;
    cfg.efficiency_half_power_mw = 0.0;  // flat efficiency
    energy::EnergyStorage s(cfg);
    const double stored = s.harvest(2.0, 3.0);  // 6 mJ gross
    EXPECT_NEAR(stored, 6.0 * 0.8, 1e-9);
    EXPECT_NEAR(s.level(), 4.8, 1e-9);
}

TEST(Storage, EfficiencyRisesWithPower) {
    energy::StorageConfig cfg;
    cfg.efficiency_max = 0.9;
    cfg.efficiency_half_power_mw = 0.1;
    energy::EnergyStorage s(cfg);
    EXPECT_EQ(s.efficiency_at(0.0), 0.0);
    EXPECT_LT(s.efficiency_at(0.05), s.efficiency_at(0.5));
    EXPECT_NEAR(s.efficiency_at(0.1), 0.45, 1e-9);  // half-power point
    EXPECT_LT(s.efficiency_at(100.0), 0.9 + 1e-9);
}

TEST(Storage, CapsAtCapacity) {
    energy::StorageConfig cfg;
    cfg.capacity_mj = 1.0;
    cfg.efficiency_max = 1.0;
    cfg.efficiency_half_power_mw = 0.0;
    cfg.leakage_mw = 0.0;
    energy::EnergyStorage s(cfg);
    (void)s.harvest(10.0, 10.0);  // 100 mJ gross
    EXPECT_NEAR(s.level(), 1.0, 1e-9);
}

TEST(Storage, TryConsumeAllOrNothing) {
    energy::StorageConfig cfg;
    cfg.capacity_mj = 5.0;
    cfg.initial_mj = 2.0;
    energy::EnergyStorage s(cfg);
    EXPECT_FALSE(s.try_consume(3.0));
    EXPECT_NEAR(s.level(), 2.0, 1e-12);  // unchanged on failure
    EXPECT_TRUE(s.try_consume(1.5));
    EXPECT_NEAR(s.level(), 0.5, 1e-12);
}

TEST(Storage, LeakageDrainsOverTime) {
    energy::StorageConfig cfg;
    cfg.capacity_mj = 5.0;
    cfg.initial_mj = 1.0;
    cfg.leakage_mw = 0.01;
    energy::EnergyStorage s(cfg);
    (void)s.harvest(0.0, 50.0);  // no input, 50 s of leakage
    EXPECT_NEAR(s.level(), 0.5, 1e-9);
}

TEST(Storage, ThresholdHysteresis) {
    energy::StorageConfig cfg;
    cfg.capacity_mj = 2.0;
    cfg.on_threshold_mj = 1.0;
    cfg.off_threshold_mj = 0.2;
    cfg.initial_mj = 0.5;
    energy::EnergyStorage s(cfg);
    EXPECT_FALSE(s.can_turn_on());
    EXPECT_FALSE(s.must_turn_off());
    s.reset(1.5);
    EXPECT_TRUE(s.can_turn_on());
    s.reset(0.1);
    EXPECT_TRUE(s.must_turn_off());
}

TEST(Storage, RandomScheduleNeverViolatesInvariants) {
    // Property: level stays in [0, capacity] under arbitrary harvest/consume.
    energy::StorageConfig cfg;
    cfg.capacity_mj = 4.0;
    cfg.initial_mj = 1.0;
    cfg.leakage_mw = 0.002;
    energy::EnergyStorage s(cfg);
    util::Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        if (rng.bernoulli(0.6)) {
            (void)s.harvest(rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0));
        } else if (rng.bernoulli(0.5)) {
            (void)s.try_consume(rng.uniform(0.0, 2.0));
        } else {
            s.drain(rng.uniform(0.0, 1.0));
        }
        EXPECT_GE(s.level(), 0.0);
        EXPECT_LE(s.level(), cfg.capacity_mj + 1e-12);
    }
}

}  // namespace
