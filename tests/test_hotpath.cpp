// Bitwise-equality suite for the simulator hot-path overhaul (`ctest -L
// hotpath`). Four pillars:
//
//  1. Unit contracts of the new utility layer: util::Arena (aligned bump
//     allocation, capacity-retaining reset), util::Registry<T> (the one
//     registry template behind every named axis, with the shared
//     unknown-name diagnostic), util::ParamReader (typed getters,
//     unknown-key rejection).
//  2. Workspace transparency: running every registered experiment's --quick
//     grid through the runner's workspace pool produces metrics, SimResults
//     and aggregate CSVs bitwise equal to the historical allocate-per-run
//     path (ScenarioContext::workspace == nullptr) — the arena and buffer
//     reuse change where state lives, never the values written through it.
//  3. Scheduling invariance with the workspace enabled: thread count and a
//     3-way shard/journal/merge split leave the aggregate byte-identical.
//  4. Profiler neutrality: profiling hooks are off-by-default pointer
//     tests; a profiled run produces bitwise-identical outcomes while
//     accumulating per-phase counters, and batched stepping feeds run() and
//     run_into() the exact same values with or without a workspace.
//
// (The batched-vs-historical stepping equality itself is pinned stronger
// than any in-process compare could: tests/test_kernels_dispatch.cpp hashes
// every --quick aggregate CSV against goldens captured from the
// single-step-dispatch implementation.)
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/baseline_models.hpp"
#include "energy/power_trace.hpp"
#include "exp/aggregate.hpp"
#include "exp/cli.hpp"
#include "exp/experiment.hpp"
#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "sim/workspace.hpp"
#include "util/arena.hpp"
#include "util/param_reader.hpp"
#include "util/registry.hpp"

namespace {

using namespace imx;

// --- util::Arena -----------------------------------------------------------

TEST(Arena, BumpAllocationIsAlignedAndCounted) {
    util::Arena arena(256);
    void* a = arena.allocate(10, 8);
    void* b = arena.allocate(1, 64);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
    EXPECT_GE(arena.bytes_used(), 11u);
    // Zero-byte requests still return a usable, aligned, non-null pointer.
    EXPECT_NE(arena.allocate(0), nullptr);
}

TEST(Arena, ResetKeepsCapacityAndRecyclesBlocks) {
    util::Arena arena(256);
    int* first = arena.allocate_array<int>(8);
    first[0] = 41;
    const std::size_t reserved = arena.bytes_reserved();
    EXPECT_GT(reserved, 0u);
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    // Same block, same cursor: the steady state re-hands the same memory.
    int* again = arena.allocate_array<int>(8);
    EXPECT_EQ(first, again);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
    util::Arena arena(64);
    char* big = arena.allocate_array<char>(1000);
    ASSERT_NE(big, nullptr);
    big[999] = 'x';  // must be writable end to end
    EXPECT_GE(arena.bytes_reserved(), 1000u);
    // Smaller allocations still work afterwards.
    EXPECT_NE(arena.allocate(16), nullptr);
}

TEST(Arena, ScopeResetsOnExit) {
    util::Arena arena;
    {
        util::Arena::Scope scope(arena);
        (void)arena.allocate(128);
        EXPECT_GT(arena.bytes_used(), 0u);
    }
    EXPECT_EQ(arena.bytes_used(), 0u);
}

// --- util::Registry --------------------------------------------------------

TEST(RegistryTemplate, AddGetContainsAndSortedNames) {
    util::Registry<int> registry("widget");
    registry.add("zeta", 1);
    registry.add("alpha", 2);
    registry.add("mid", 3);
    EXPECT_TRUE(registry.contains("mid"));
    EXPECT_FALSE(registry.contains("nope"));
    EXPECT_EQ(registry.get("alpha"), 2);
    registry.add("alpha", 9);  // replace
    EXPECT_EQ(registry.get("alpha"), 9);
    const std::vector<std::string> names = registry.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
}

TEST(RegistryTemplate, UnknownNameDiagnosticListsEveryRegisteredName) {
    util::Registry<int> registry("exit policy");
    registry.add("greedy", 1);
    registry.add("qlearning", 2);
    try {
        (void)registry.get("greedo");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // Byte-identical to the historical hand-rolled registries.
        EXPECT_STREQ(e.what(),
                     "unknown exit policy 'greedo' "
                     "(registered: greedy, qlearning)");
    }
}

TEST(RegistryTemplate, ReadProjectsAndRowsDescribe) {
    struct Entry {
        int factory;
        std::string description;
    };
    util::Registry<Entry> registry("thing");
    registry.add("b", {2, "second"});
    registry.add("a", {1, "first"});
    EXPECT_EQ(registry.read("a", [](const Entry& e) { return e.factory; }), 1);
    const auto rows =
        registry.rows([](const Entry& e) { return e.description; });
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].first, "a");
    EXPECT_EQ(rows[0].second, "first");
    EXPECT_EQ(rows[1].second, "second");
}

// --- util::ParamReader -----------------------------------------------------

TEST(ParamReader, TypedGettersParseAndFallBack) {
    const util::ParamReader::Params params = {
        {"rate", "2.5"}, {"duty", "0.25"}, {"label", "x"}};
    util::ParamReader reader("trace source", "demo", params);
    EXPECT_EQ(reader.positive("rate", 1.0), 2.5);
    EXPECT_EQ(reader.fraction("duty", 0.5), 0.25);
    EXPECT_EQ(reader.number("absent", -3.0), -3.0);
    EXPECT_EQ(reader.text("label", "y"), "x");
    EXPECT_EQ(reader.text("missing", "fallback"), "fallback");
    reader.done();  // every provided key was consumed
}

TEST(ParamReader, DoneRejectsUnconsumedKeysWithAcceptList) {
    const util::ParamReader::Params params = {{"typo_key", "1"}};
    util::ParamReader reader("arrival source", "bursty", params);
    (void)reader.positive("burst_min", 1.0);
    (void)reader.positive("burst_max", 4.0);
    try {
        reader.done();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_STREQ(e.what(),
                     "arrival source 'bursty': unknown parameter 'typo_key' "
                     "(accepts: burst_max, burst_min)");
    }
}

TEST(ParamReader, RejectsMalformedAndOutOfRangeNumbers) {
    const util::ParamReader::Params params = {
        {"rate", "fast"}, {"duty", "1.5"}, {"count", "-2"}};
    util::ParamReader bad_number("trace source", "s", params);
    EXPECT_THROW((void)bad_number.number("rate", 0.0), std::invalid_argument);
    util::ParamReader bad_fraction("trace source", "s", params);
    EXPECT_THROW((void)bad_fraction.fraction("duty", 0.0),
                 std::invalid_argument);
    util::ParamReader bad_positive("trace source", "s", params);
    EXPECT_THROW((void)bad_positive.positive("count", 1.0),
                 std::invalid_argument);
    util::ParamReader missing("trace source", "s", params);
    EXPECT_THROW((void)missing.required_text("name"), std::invalid_argument);
}

// --- sim::Profiler ---------------------------------------------------------

// The off path must stay free: hooks are noexcept pointer tests, and the
// scoped timer carries no state beyond the pointer, the phase tag and the
// (conditionally read) start time.
static_assert(noexcept(std::declval<sim::Profiler&>().add(
                  sim::Profiler::Phase::kHarvest, 1, 1)),
              "profiler hooks must not be able to throw");
static_assert(noexcept(std::declval<sim::Profiler&>().count_run()),
              "profiler hooks must not be able to throw");
static_assert(noexcept(sim::ScopedPhase(nullptr,
                                        sim::Profiler::Phase::kHarvest)),
              "the profiler-off constructor must not be able to throw");
static_assert(sizeof(sim::ScopedPhase) <=
                  sizeof(void*) + sizeof(int) +
                      sizeof(std::chrono::steady_clock::time_point) +
                      alignof(std::chrono::steady_clock::time_point),
              "ScopedPhase must stay a trivial stack token");

TEST(Profiler, AccumulatesMergesAndRenders) {
    sim::Profiler a;
    a.add(sim::Profiler::Phase::kHarvest, 10, 500);
    a.add(sim::Profiler::Phase::kPolicy, 2, 100);
    a.count_run();
    a.count_scenario();
    sim::Profiler b;
    b.add(sim::Profiler::Phase::kHarvest, 5, 250);
    b.count_run();
    a.merge(b);
    EXPECT_EQ(a.stats(sim::Profiler::Phase::kHarvest).calls, 15u);
    EXPECT_EQ(a.stats(sim::Profiler::Phase::kHarvest).ns, 750u);
    EXPECT_EQ(a.stats(sim::Profiler::Phase::kPolicy).calls, 2u);
    EXPECT_EQ(a.runs(), 2u);
    EXPECT_EQ(a.scenarios(), 1u);
    EXPECT_EQ(a.total_ns(), 850u);
    for (const char* name :
         {"harvest", "queue", "policy", "inference", "commit"}) {
        EXPECT_NE(a.table().find(name), std::string::npos) << name;
        EXPECT_NE(a.json().find(name), std::string::npos) << name;
    }
}

TEST(Profiler, ScopedPhaseRecordsOnlyWhenAttached) {
    sim::Profiler profiler;
    { sim::ScopedPhase off(nullptr, sim::Profiler::Phase::kQueue); }
    EXPECT_EQ(profiler.stats(sim::Profiler::Phase::kQueue).calls, 0u);
    { sim::ScopedPhase on(&profiler, sim::Profiler::Phase::kQueue); }
    EXPECT_EQ(profiler.stats(sim::Profiler::Phase::kQueue).calls, 1u);
}

// --- workspace / profiler transparency over the sweep engine ---------------

void expect_metrics_bitwise(const exp::MetricMap& a, const exp::MetricMap& b) {
    ASSERT_EQ(a.size(), b.size());
    auto ia = a.begin();
    auto ib = b.begin();
    for (; ia != a.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        // Bitwise, not tolerance: 0.0 == -0.0 would slip through ==.
        EXPECT_EQ(std::memcmp(&ia->second, &ib->second, sizeof(double)), 0)
            << ia->first << ": " << ia->second << " vs " << ib->second;
    }
}

void expect_sim_bitwise(const sim::SimResult& a, const sim::SimResult& b) {
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const sim::EventRecord& ra = a.records[i];
        const sim::EventRecord& rb = b.records[i];
        EXPECT_EQ(ra.event_id, rb.event_id);
        EXPECT_EQ(ra.arrival_time_s, rb.arrival_time_s);
        EXPECT_EQ(ra.processed, rb.processed);
        EXPECT_EQ(ra.correct, rb.correct);
        EXPECT_EQ(ra.exit_taken, rb.exit_taken);
        EXPECT_EQ(ra.hops, rb.hops);
        EXPECT_EQ(ra.completion_time_s, rb.completion_time_s);
        EXPECT_EQ(ra.inference_start_s, rb.inference_start_s);
        EXPECT_EQ(ra.energy_spent_mj, rb.energy_spent_mj);
        EXPECT_EQ(ra.macs, rb.macs);
    }
    EXPECT_EQ(a.total_harvested_mj, b.total_harvested_mj);
    EXPECT_EQ(a.duration_s, b.duration_s);
    EXPECT_EQ(a.deadline_s, b.deadline_s);
    EXPECT_EQ(a.deaths, b.deaths);
    EXPECT_EQ(a.recovery_energy_mj, b.recovery_energy_mj);
    EXPECT_EQ(a.wasted_macs, b.wasted_macs);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.in_flight, b.in_flight);
}

void expect_outcomes_bitwise(const std::vector<exp::ScenarioOutcome>& a,
                             const std::vector<exp::ScenarioOutcome>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        expect_metrics_bitwise(a[i].metrics, b[i].metrics);
        ASSERT_EQ(a[i].sim.has_value(), b[i].sim.has_value());
        if (a[i].sim.has_value()) expect_sim_bitwise(*a[i].sim, *b[i].sim);
    }
}

std::vector<exp::ScenarioSpec> quick_specs(const std::string& name) {
    exp::SweepCli cli;
    cli.quick = true;
    cli.replicas = 1;
    cli.replicas_given = true;
    cli.threads = 1;
    return exp::build_experiment_scenarios(exp::make_experiment(name), cli);
}

/// The historical allocate-per-run path: every scenario executed with a
/// null workspace, serially.
std::vector<exp::ScenarioOutcome> run_without_workspace(
    const std::vector<exp::ScenarioSpec>& specs) {
    std::vector<exp::ScenarioOutcome> outcomes;
    outcomes.reserve(specs.size());
    for (const exp::ScenarioSpec& spec : specs) {
        exp::ScenarioContext ctx;
        ctx.seed = spec.seed;
        ctx.replica = spec.replica;
        ctx.workspace = nullptr;
        outcomes.push_back(spec.run(ctx));
    }
    return outcomes;
}

std::string aggregate_csv_bytes(const std::vector<exp::ScenarioSpec>& specs,
                                const std::vector<exp::ScenarioOutcome>& o,
                                const std::string& tag) {
    const std::string path = testing::TempDir() + "imx_hotpath_" + tag + ".csv";
    exp::write_aggregate_csv(path, exp::aggregate(specs, o));
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());
    return buf.str();
}

TEST(WorkspaceEquality, EveryQuickExperimentMatchesNoWorkspaceBitwise) {
    for (const std::string& name : exp::experiment_names()) {
        SCOPED_TRACE(name);
        const auto specs = quick_specs(name);
        // Workspace pool on (the runner always attaches one per worker).
        const auto pooled = exp::run_sweep(specs, exp::RunnerConfig{1});
        // Historical allocate-per-run path.
        const auto bare = run_without_workspace(specs);
        expect_outcomes_bitwise(pooled, bare);
        EXPECT_EQ(aggregate_csv_bytes(specs, pooled, name + "_ws"),
                  aggregate_csv_bytes(specs, bare, name + "_bare"));
    }
}

TEST(WorkspaceEquality, ThreadCountIsInvariantWithWorkspacePool) {
    const auto specs = quick_specs("harvester-ablation");
    const auto one = exp::run_sweep(specs, exp::RunnerConfig{1});
    const auto three = exp::run_sweep(specs, exp::RunnerConfig{3});
    expect_outcomes_bitwise(one, three);
}

TEST(WorkspaceEquality, ThreeShardJournalMergeMatchesUnsharded) {
    const auto specs = quick_specs("harvester-ablation");
    exp::JournalHeader header;
    header.experiment = "harvester-ablation";
    header.total_specs = specs.size();
    header.quick = true;
    header.replicas = 1;

    const auto unsharded =
        exp::run_shard(specs, header, exp::RunnerConfig{2}, "", false);

    std::vector<std::string> journals;
    for (int i = 0; i < 3; ++i) {
        exp::JournalHeader shard_header = header;
        shard_header.shard = {i, 3};
        const std::string path = testing::TempDir() + "imx_hotpath_shard" +
                                 std::to_string(i) + ".jsonl";
        (void)exp::run_shard(specs, shard_header, exp::RunnerConfig{2}, path,
                             false);
        journals.push_back(path);
    }
    const auto merged = exp::merge_journal_outcomes(header, specs, journals);
    for (const std::string& path : journals) std::remove(path.c_str());

    // Journals carry scalar metrics only, so compare through the aggregate
    // CSV — the exact artifact the merge contract promises byte-equal.
    EXPECT_EQ(
        aggregate_csv_bytes(specs, unsharded.outcomes, "unsharded"),
        aggregate_csv_bytes(specs, merged, "merged"));
}

TEST(ProfilerEquality, ProfiledSweepIsBitwiseIdenticalAndCounts) {
    const auto specs = quick_specs("harvester-ablation");
    const auto plain = exp::run_sweep(specs, exp::RunnerConfig{1});
    sim::Profiler profiler;
    exp::RunnerConfig config;
    config.threads = 1;
    config.profiler = &profiler;
    const auto profiled = exp::run_sweep(specs, config);
    expect_outcomes_bitwise(plain, profiled);
    EXPECT_EQ(profiler.scenarios(), specs.size());
    EXPECT_GE(profiler.runs(), profiler.scenarios());
    EXPECT_GT(profiler.total_ns(), 0u);
    EXPECT_GT(profiler.stats(sim::Profiler::Phase::kHarvest).calls, 0u);
}

// --- direct Simulator equivalences -----------------------------------------

TEST(BatchedStepping, RunVariantsAgreeBitwiseWithAndWithoutWorkspace) {
    // A trace with dark stretches exercises both batched drains (idle
    // harvest-only and executing multi-exit) and the early trailing break.
    std::vector<double> samples(20, 0.0);
    samples.insert(samples.end(), 100, 0.4);
    samples.insert(samples.end(), 30, 0.0);
    const energy::PowerTrace trace(1.0, std::move(samples));

    sim::SimConfig cfg;
    cfg.mode = sim::ExecutionMode::kMultiExit;
    cfg.dt_s = 1.0;
    cfg.storage.capacity_mj = 8.0;
    cfg.storage.initial_mj = 1.0;
    cfg.queue_capacity = 4;
    const std::vector<sim::Event> events = {
        {0, 2.0}, {1, 3.0}, {2, 40.0}, {3, 90.0}};

    sim::GreedyAffordablePolicy policy_a;
    sim::Simulator simulator(trace, cfg);
    baselines::FixedBaselineModel model = baselines::make_lenet_cifar();
    const sim::SimResult base = simulator.run(events, model, policy_a);

    // run() with a workspace: arena-backed queue ring, same values.
    sim::ScenarioWorkspace workspace;
    sim::GreedyAffordablePolicy policy_b;
    baselines::FixedBaselineModel model_b = baselines::make_lenet_cifar();
    const sim::SimResult with_ws =
        simulator.run(events, model_b, policy_b, &workspace);
    expect_sim_bitwise(base, with_ws);
    EXPECT_GT(workspace.arena.bytes_reserved(), 0u);

    // run_into() reusing a result buffer (twice, to exercise reuse).
    sim::SimResult reused;
    sim::GreedyAffordablePolicy policy_c;
    baselines::FixedBaselineModel model_c = baselines::make_lenet_cifar();
    simulator.run_into(events, model_c, policy_c, reused, &workspace);
    sim::GreedyAffordablePolicy policy_d;
    baselines::FixedBaselineModel model_d = baselines::make_lenet_cifar();
    simulator.run_into(events, model_d, policy_d, reused, &workspace);
    expect_sim_bitwise(base, reused);
}

}  // namespace
