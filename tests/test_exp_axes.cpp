// Tests for the storage-capacity and deadline scenario axes and the
// replica-0 equivalence of the newly ported bench scenarios: patch factory
// composition, storage monotonicity, deadline-miss-rate bounds, the
// deadline wiring through simulator and policy state, and bitwise agreement
// between the exp:: scenario paths and hand-rolled canonical runs.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_models.hpp"
#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"
#include "energy/solar.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace imx;

constexpr double kInf = std::numeric_limits<double>::infinity();

core::SetupConfig mini_config() {
    core::SetupConfig config;
    config.event_count = 60;
    config.duration_s = 1500.0;
    config.total_harvest_mj = 35.0;
    return config;
}

// --- Patch factories ------------------------------------------------------

TEST(StoragePatch, SetsCapacityAndClampsInitial) {
    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 10.0;
    cfg.storage.initial_mj = 5.0;

    const auto small = exp::storage_patch(1.5);
    EXPECT_EQ(small.label, "cap1.5mJ");
    EXPECT_EQ(small.dims.at("storage_mj"), "1.5");
    auto patched = cfg;
    small.apply(patched);
    EXPECT_DOUBLE_EQ(patched.storage.capacity_mj, 1.5);
    EXPECT_DOUBLE_EQ(patched.storage.initial_mj, 1.5);  // clamped

    const auto large = exp::storage_patch(20.0);
    patched = cfg;
    large.apply(patched);
    EXPECT_DOUBLE_EQ(patched.storage.capacity_mj, 20.0);
    EXPECT_DOUBLE_EQ(patched.storage.initial_mj, 5.0);  // untouched
}

TEST(DeadlinePatch, SetsDeadlineAndLabelsCells) {
    const auto tight = exp::deadline_patch(60.0);
    EXPECT_EQ(tight.label, "ddl60s");
    EXPECT_EQ(tight.dims.at("deadline_s"), "60");
    sim::SimConfig cfg;
    tight.apply(cfg);
    EXPECT_DOUBLE_EQ(cfg.deadline_s, 60.0);

    const auto none = exp::deadline_patch(kInf);
    EXPECT_EQ(none.label, "ddl-none");
    EXPECT_EQ(none.dims.at("deadline_s"), "inf");
    sim::SimConfig untouched;
    none.apply(untouched);
    EXPECT_EQ(untouched.deadline_s, kInf);
}

TEST(CrossPatches, ComposesLabelsDimsAndApplies) {
    const auto grid = exp::cross_patches(
        {exp::storage_patch(2.0)},
        {exp::deadline_patch(60.0), exp::deadline_patch(kInf)});
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_EQ(grid[0].label, "cap2mJ+ddl60s");
    EXPECT_EQ(grid[1].label, "cap2mJ+ddl-none");
    EXPECT_EQ(grid[0].dims.at("storage_mj"), "2");
    EXPECT_EQ(grid[0].dims.at("deadline_s"), "60");

    sim::SimConfig cfg;
    cfg.storage.initial_mj = 3.0;
    grid[0].apply(cfg);
    EXPECT_DOUBLE_EQ(cfg.storage.capacity_mj, 2.0);
    EXPECT_DOUBLE_EQ(cfg.storage.initial_mj, 2.0);
    EXPECT_DOUBLE_EQ(cfg.deadline_s, 60.0);
}

// --- Storage-capacity monotonicity ----------------------------------------

TEST(StorageAxis, MoreCapacityNeverHurtsForwardProgress) {
    // Single-exit model under the greedy policy on a low constant income:
    // the only effect of a larger buffer is less energy lost to capping, so
    // forward progress (processed events) must be non-decreasing.
    const auto trace = energy::PowerTrace::constant(0.02, 600.0, 1.0);
    std::vector<sim::Event> events;
    for (int i = 0; i < 20; ++i) {
        events.push_back({i, 5.0 + 30.0 * i});
    }
    int previous_processed = -1;
    for (const double capacity : {0.6, 1.2, 2.4, 4.8}) {
        sim::SimConfig cfg;
        cfg.storage.leakage_mw = 0.0;
        exp::storage_patch(capacity).apply(cfg);
        sim::Simulator simulator(trace, cfg);
        auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
        sim::GreedyAffordablePolicy policy;
        const auto result = simulator.run(events, model, policy);
        EXPECT_GE(result.processed_count(), previous_processed)
            << "capacity " << capacity;
        previous_processed = result.processed_count();
    }
    EXPECT_GT(previous_processed, 0);
}

TEST(StorageAxis, ReplicaZeroMatchesHandRolledCapacityVariant) {
    // The sweep's storage patch must reproduce the historical hand-rolled
    // "modify the setup's storage config" path bitwise.
    const auto setup = core::make_paper_setup(mini_config());

    exp::PaperSweep sweep;
    sweep.traces = {{"mini", mini_config()}};
    sweep.systems = {{"ours-static", exp::SystemKind::kOursStatic, 0, {}, ""}};
    sweep.patches = {exp::storage_patch(2.0)};
    const auto specs = exp::build_paper_scenarios(sweep);
    ASSERT_EQ(specs.size(), 1u);
    const auto outcomes = exp::run_sweep(specs, {2});

    auto variant = setup;
    variant.multi_exit_sim.storage.capacity_mj = 2.0;
    variant.multi_exit_sim.storage.initial_mj =
        std::min(variant.multi_exit_sim.storage.initial_mj, 2.0);
    core::OracleInferenceModel model(variant.network, variant.deployed_policy,
                                     variant.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(variant.trace, variant.multi_exit_sim);
    const auto direct = simulator.run(variant.events, model, policy);

    EXPECT_EQ(outcomes[0].metrics.at("iepmj"), direct.iepmj());
    EXPECT_EQ(outcomes[0].metrics.at("processed"),
              static_cast<double>(direct.processed_count()));
    EXPECT_EQ(outcomes[0].metrics.at("consumed_mj"),
              direct.total_consumed_mj());
}

// --- Deadline axis --------------------------------------------------------

TEST(DeadlineAxis, MissRateBoundsAndThresholdMonotonicity) {
    const auto setup = core::make_paper_setup(mini_config());
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    const auto result = simulator.run(setup.events, model, policy);

    // No deadline configured: the run's own rate is zero by definition.
    EXPECT_EQ(result.deadline_s, kInf);
    EXPECT_DOUBLE_EQ(result.deadline_miss_rate(), 0.0);

    // Evaluated post-hoc at any threshold the rate is a valid fraction and
    // tightening the threshold can only raise it.
    double previous = 0.0;
    for (const double deadline : {600.0, 120.0, 30.0, 5.0, 0.5}) {
        const double rate = result.deadline_miss_rate(deadline);
        EXPECT_GE(rate, 0.0);
        EXPECT_LE(rate, 1.0);
        EXPECT_GE(rate, previous) << "deadline " << deadline;
        previous = rate;
    }
    // Tighter than any completion latency: every event is a miss.
    EXPECT_DOUBLE_EQ(result.deadline_miss_rate(1e-6), 1.0);
}

TEST(DeadlineAxis, HopelessWaitingJobIsDroppedAndDeviceFrees) {
    // No income for 50 s, then constant power. Event A arrives at t=1 and
    // can never start before its deadline; event B arrives once income is
    // back. Without a deadline A camps on the device and B is lost; with a
    // deadline A is dropped and B completes.
    std::vector<double> samples(200, 0.01);
    for (std::size_t i = 0; i < 50; ++i) samples[i] = 0.0;
    const energy::PowerTrace trace(1.0, samples);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    const std::vector<sim::Event> events = {{0, 1.0}, {1, 60.0}};

    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 5.0;
    cfg.storage.initial_mj = 0.0;
    cfg.storage.leakage_mw = 0.0;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;

    {
        sim::GreedyAffordablePolicy policy;
        sim::Simulator simulator(trace, cfg);
        const auto r = simulator.run(events, model, policy);
        EXPECT_TRUE(r.records[0].processed);
        EXPECT_FALSE(r.records[1].processed);  // lost while A held the device
    }
    {
        cfg.deadline_s = 10.0;
        sim::GreedyAffordablePolicy policy;
        sim::Simulator simulator(trace, cfg);
        const auto r = simulator.run(events, model, policy);
        EXPECT_FALSE(r.records[0].processed);  // dropped at its deadline
        EXPECT_TRUE(r.records[1].processed);   // device was free again
        EXPECT_DOUBLE_EQ(r.deadline_miss_rate(), 0.5);
    }
}

TEST(DeadlineAxis, PolicySeesShrinkingSlack) {
    struct Probe final : sim::ExitPolicy {
        std::vector<double> slacks;
        int select_exit(const sim::EnergyState& s,
                        const sim::InferenceModel&) override {
            slacks.push_back(s.deadline_slack_s);
            return -1;  // keep waiting
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int,
                                double) override {
            return false;
        }
    };
    const auto trace = energy::PowerTrace::constant(0.0, 100.0, 1.0);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    const std::vector<sim::Event> events = {{0, 5.0}};

    sim::SimConfig cfg;
    {
        Probe probe;
        sim::Simulator simulator(trace, cfg);
        (void)simulator.run(events, model, probe);
        ASSERT_FALSE(probe.slacks.empty());
        for (const double s : probe.slacks) EXPECT_EQ(s, kInf);
    }
    {
        cfg.deadline_s = 20.0;
        Probe probe;
        sim::Simulator simulator(trace, cfg);
        (void)simulator.run(events, model, probe);
        ASSERT_GE(probe.slacks.size(), 2u);
        EXPECT_LE(probe.slacks.front(), 20.0);
        EXPECT_GE(probe.slacks.front(), 0.0);
        for (std::size_t i = 1; i < probe.slacks.size(); ++i) {
            EXPECT_LT(probe.slacks[i], probe.slacks[i - 1]);
        }
    }
}

TEST(DeadlineAxis, SweepEmitsDeadlineMissMetricPerCell) {
    exp::PaperSweep sweep;
    sweep.traces = {{"mini", mini_config()}};
    sweep.systems = {{"ours-static", exp::SystemKind::kOursStatic, 0, {}, ""}};
    sweep.patches = {exp::deadline_patch(30.0), exp::deadline_patch(kInf)};
    const auto specs = exp::build_paper_scenarios(sweep);
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].dims.at("deadline_s"), "30");
    EXPECT_EQ(specs[1].dims.at("deadline_s"), "inf");

    const auto outcomes = exp::run_sweep(specs, {2});
    const double tight = outcomes[0].metrics.at("deadline_miss_pct");
    EXPECT_GE(tight, 0.0);
    EXPECT_LE(tight, 100.0);
    EXPECT_DOUBLE_EQ(outcomes[1].metrics.at("deadline_miss_pct"), 0.0);
}

// --- Trace-registry golden stability --------------------------------------

TEST(TraceRegistryAxis, SolarReplicaZeroIsBitwiseStableAcrossTheRegistry) {
    // Label resolution for "paper-solar" grids now goes through the energy
    // trace registry; the replica-0 scenario output must stay bitwise
    // identical to a hand-rolled run over the legacy hard-coded solar trace
    // (reconstructed inline here, exactly as make_paper_setup used to).
    const auto config = mini_config();
    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", config}};
    sweep.systems = {{"ours-static", exp::SystemKind::kOursStatic, 0, {}, ""}};
    const auto specs = exp::build_paper_scenarios(sweep);
    ASSERT_EQ(specs.size(), 1u);
    const auto outcomes = exp::run_sweep(specs, {2});

    energy::SolarConfig solar;
    solar.days = 1.0;
    solar.dt_s = 1.0;
    solar.peak_power_mw = 0.08;
    solar.window_start_hour = solar.sunrise_hour;
    solar.window_end_hour = solar.sunset_hour;
    solar.envelope_exponent = 2.0;
    solar.time_compression =
        (solar.window_end_hour - solar.window_start_hour) * 3600.0 /
        config.duration_s;
    solar.seed = config.trace_seed;
    energy::PowerTrace legacy_trace = energy::make_solar_trace(solar);
    legacy_trace.rescale_total_energy(config.total_harvest_mj);

    auto setup = core::make_paper_setup(config);
    setup.trace = legacy_trace;
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    const auto direct = simulator.run(setup.events, model, policy);

    EXPECT_EQ(outcomes[0].metrics.at("iepmj"), direct.iepmj());
    EXPECT_EQ(outcomes[0].metrics.at("acc_all_pct"),
              100.0 * direct.accuracy_all_events());
    EXPECT_EQ(outcomes[0].metrics.at("processed"),
              static_cast<double>(direct.processed_count()));
    EXPECT_EQ(outcomes[0].metrics.at("consumed_mj"),
              direct.total_consumed_mj());
}

// --- Replica-0 equivalence of the newly ported bench scenarios ------------

TEST(PortedScenarios, ExitAccuracyMatchesDirectOracle) {
    const auto desc = core::make_paper_network_desc();
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});

    const struct {
        exp::CompressionVariant variant;
        compress::Policy policy;
    } cases[] = {
        {exp::CompressionVariant::kFullPrecision,
         compress::Policy::full_precision(desc.num_layers())},
        {exp::CompressionVariant::kUniform, core::uniform_baseline_policy()},
        {exp::CompressionVariant::kNonuniform,
         core::reference_nonuniform_policy()},
    };
    for (const auto& c : cases) {
        const auto spec =
            exp::make_exit_accuracy_scenario(c.variant, "variant");
        const auto outcomes = exp::run_sweep({spec}, {2});
        const auto expected = oracle.exit_accuracy(c.policy);
        for (std::size_t e = 0; e < expected.size(); ++e) {
            EXPECT_EQ(outcomes[0].metrics.at(
                          "exit" + std::to_string(e + 1) + "_acc_pct"),
                      expected[e]);
        }
        EXPECT_EQ(outcomes[0].metrics.at("model_kb"),
                  compress::model_bytes(desc, c.policy) / 1024.0);
    }
}

TEST(PortedScenarios, LearningCurveMatchesHandRolledTrainingLoop) {
    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(mini_config()));
    const int episodes = 2;
    const exp::SystemSpec system{
        "ql", exp::SystemKind::kOursQLearning, episodes, {}, ""};

    const auto spec = exp::make_learning_curve_scenario(setup, system, "mini");
    const auto outcomes = exp::run_sweep({spec}, {1});

    // Hand-rolled replica-0 path, exactly as the pre-port fig7a bench ran:
    // canonical 2000+episode training event seeds, then a greedy evaluation
    // on the canonical schedule.
    core::OracleInferenceModel model(setup->network, setup->deployed_policy,
                                     setup->exit_accuracy);
    sim::QLearningExitPolicy policy(setup->network.num_exits, {});
    sim::Simulator simulator(setup->trace, setup->multi_exit_sim);
    std::vector<double> curve;
    for (int ep = 0; ep < episodes; ++ep) {
        const auto train_events = sim::generate_events(
            {static_cast<int>(setup->events.size()), setup->trace.duration(),
             sim::ArrivalKind::kUniform,
             2000 + static_cast<std::uint64_t>(ep)});
        const auto r = simulator.run(train_events, model, policy);
        curve.push_back(100.0 * r.accuracy_all_events());
    }
    policy.set_eval_mode(true);
    const auto final_run = simulator.run(setup->events, model, policy);

    EXPECT_EQ(outcomes[0].metrics.at("curve_ep01"), curve[0]);
    EXPECT_EQ(outcomes[0].metrics.at("curve_ep02"), curve[1]);
    EXPECT_EQ(outcomes[0].metrics.at("iepmj"), final_run.iepmj());
    EXPECT_EQ(outcomes[0].metrics.at("acc_all_pct"),
              100.0 * final_run.accuracy_all_events());
}

TEST(PortedScenarios, SearchScenarioMatchesDirectSearch) {
    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(mini_config()));
    core::SearchConfig cfg;
    cfg.episodes = 10;

    const auto spec = exp::make_search_scenario(
        setup, exp::SearchAlgo::kRandom, "random", cfg);
    const auto outcomes = exp::run_sweep({spec}, {2});

    const auto& desc = setup->network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup->trace, setup->events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(),
                                          cfg.trace_aware);
    core::CompressionSearch search(evaluator, cfg);
    const auto direct = search.run_random();

    EXPECT_EQ(outcomes[0].metrics.at("best_racc"), direct.best_reward);
    EXPECT_EQ(outcomes[0].metrics.at("evaluations"),
              static_cast<double>(direct.evaluations));
}

}  // namespace
