// Edge-case and behavioural tests for the simulator and runtime that the
// main suites don't cover: wakeup accounting, charge-rate observation,
// commitment semantics, empty/degenerate inputs.
#include <gtest/gtest.h>

#include "baselines/baseline_models.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace imx;

sim::SimConfig rich_config() {
    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 50.0;
    cfg.storage.initial_mj = 50.0;
    cfg.storage.leakage_mw = 0.0;
    cfg.mcu.mmacs_per_second = 1.0;
    return cfg;
}

TEST(SimulatorEdges, NoEventsYieldsEmptyResult) {
    const auto trace = energy::PowerTrace::constant(1.0, 100.0, 1.0);
    sim::Simulator simulator(trace, rich_config());
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run({}, model, policy);
    EXPECT_EQ(r.total_events(), 0);
    EXPECT_EQ(r.processed_count(), 0);
    EXPECT_NEAR(r.accuracy_all_events(), 0.0, 1e-12);
    EXPECT_EQ(r.mean_event_latency_s(), 0.0);
}

TEST(SimulatorEdges, EventAfterTraceEndIsMissed) {
    const auto trace = energy::PowerTrace::constant(1.0, 50.0, 1.0);
    sim::Simulator simulator(trace, rich_config());
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    sim::GreedyAffordablePolicy policy;
    std::vector<sim::Event> events = {{0, 10.0}, {1, 49.9}};
    const auto r = simulator.run(events, model, policy);
    EXPECT_TRUE(r.records[0].processed);
    // Event 1 arrives 0.1 s before the trace ends; its compute cannot finish.
    EXPECT_FALSE(r.records[1].processed);
}

TEST(SimulatorEdges, WakeupEnergyIsCharged) {
    auto cfg = rich_config();
    cfg.mcu.wakeup_energy_mj = 0.5;
    const auto trace = energy::PowerTrace::constant(0.0, 100.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    sim::GreedyAffordablePolicy policy;
    std::vector<sim::Event> events = {{0, 5.0}};
    const auto r = simulator.run(events, model, policy);
    ASSERT_TRUE(r.records[0].processed);
    // 0.1 MMAC * 1.5 + 0.5 wakeup.
    EXPECT_NEAR(r.records[0].energy_spent_mj, 0.15 + 0.5, 1e-9);
}

TEST(SimulatorEdges, UnsortedEventsRejected) {
    const auto trace = energy::PowerTrace::constant(1.0, 50.0, 1.0);
    sim::Simulator simulator(trace, rich_config());
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    sim::GreedyAffordablePolicy policy;
    std::vector<sim::Event> events = {{0, 20.0}, {1, 10.0}};
    EXPECT_THROW((void)simulator.run(events, model, policy),
                 util::ContractViolation);
}

TEST(SimulatorEdges, PolicySeesChargingRateInState) {
    // A probe policy that records the observed state and always waits;
    // the charge-rate EMA must reflect the harvest level.
    struct Probe final : sim::ExitPolicy {
        double last_rate = -1.0;
        double last_level = -1.0;
        int select_exit(const sim::EnergyState& s,
                        const sim::InferenceModel&) override {
            last_rate = s.charge_rate_mw;
            last_level = s.level_mj;
            return -1;  // keep waiting
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int,
                                double) override {
            return false;
        }
    };
    auto cfg = rich_config();
    cfg.storage.initial_mj = 0.0;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;
    const auto trace = energy::PowerTrace::constant(0.04, 300.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    Probe probe;
    std::vector<sim::Event> events = {{0, 150.0}};
    (void)simulator.run(events, model, probe);
    // After 150 s of constant 0.04 mW harvesting, the EMA is close to it.
    EXPECT_NEAR(probe.last_rate, 0.04, 0.01);
    EXPECT_GT(probe.last_level, 0.0);
}

TEST(SimulatorEdges, CommittedExitIsHonoredOnceAffordable) {
    // A policy that commits to the deepest exit immediately; the simulator
    // must wait and then run exactly that exit.
    struct CommitDeep final : sim::ExitPolicy {
        int select_exit(const sim::EnergyState&,
                        const sim::InferenceModel& m) override {
            return m.num_exits() - 1;
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int,
                                double) override {
            return false;
        }
    };
    auto cfg = rich_config();
    cfg.storage.initial_mj = 0.0;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;
    cfg.mcu.wakeup_energy_mj = 0.0;
    const auto trace = energy::PowerTrace::constant(0.05, 400.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    const auto desc = core::make_paper_network_desc();
    core::OracleInferenceModel model(desc, core::reference_nonuniform_policy(),
                                     {60.0, 68.0, 70.0});
    CommitDeep policy;
    std::vector<sim::Event> events = {{0, 1.0}};
    const auto r = simulator.run(events, model, policy);
    ASSERT_TRUE(r.records[0].processed);
    EXPECT_EQ(r.records[0].exit_taken, 2);
    // Waited to buffer ~1 mJ at 0.05 mW: at least ~15 s of latency.
    EXPECT_GT(r.records[0].completion_time_s - r.records[0].arrival_time_s,
              10.0);
}

TEST(SimulatorEdges, ObserveMissedReachesPolicy) {
    struct CountMisses final : sim::ExitPolicy {
        int misses = 0;
        int select_exit(const sim::EnergyState&,
                        const sim::InferenceModel&) override {
            return 0;
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int,
                                double) override {
            return false;
        }
        void observe_missed() override { ++misses; }
    };
    auto cfg = rich_config();
    cfg.mcu.mmacs_per_second = 0.001;  // 0.1 MMAC takes 100 s
    const auto trace = energy::PowerTrace::constant(1.0, 300.0, 1.0);
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    CountMisses policy;
    std::vector<sim::Event> events = {{0, 1.0}, {1, 5.0}, {2, 9.0}};
    const auto r = simulator.run(events, model, policy);
    EXPECT_EQ(r.missed_count(), 2);
    EXPECT_EQ(policy.misses, 2);
}

TEST(SimulatorEdges, HopsCountIncrementalAdvances) {
    struct ContinueOnce final : sim::ExitPolicy {
        int select_exit(const sim::EnergyState&,
                        const sim::InferenceModel&) override {
            return 0;
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int current,
                                double) override {
            return current == 0;  // advance exactly once
        }
    };
    const auto trace = energy::PowerTrace::constant(1.0, 200.0, 1.0);
    sim::Simulator simulator(trace, rich_config());
    const auto desc = core::make_paper_network_desc();
    core::OracleInferenceModel model(desc, core::reference_nonuniform_policy(),
                                     {60.0, 68.0, 70.0});
    ContinueOnce policy;
    std::vector<sim::Event> events = {{0, 5.0}};
    const auto r = simulator.run(events, model, policy);
    ASSERT_TRUE(r.records[0].processed);
    EXPECT_EQ(r.records[0].exit_taken, 1);
    EXPECT_EQ(r.records[0].hops, 2);
    // Energy: exit-0 full cost + incremental cost to exit 1 (+ wakeup).
    const double expected =
        sim::macs_energy_mj({0, 0, 0, 1.5}, model.exit_macs(0)) +
        sim::macs_energy_mj({0, 0, 0, 1.5}, model.incremental_macs(0, 1)) +
        rich_config().mcu.wakeup_energy_mj;
    EXPECT_NEAR(r.records[0].energy_spent_mj, expected, 1e-9);
}

}  // namespace
