// Property tests for nn::Tensor and the quantization round-trip: random
// shapes, row-major stride consistency, pruning edge cases, and NaN/inf
// propagation through the dispatched kernels (part of the kernel-harness
// contract in docs/kernels.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

TEST(TensorProps, AccessorsMatchRowMajorFlatIndexing) {
    util::Rng rng(0x7e50);
    for (int trial = 0; trial < 20; ++trial) {
        const int c = rng.uniform_int(1, 6);
        const int h = rng.uniform_int(1, 9);
        const int w = rng.uniform_int(1, 9);
        nn::Tensor t({c, h, w});
        for (std::int64_t i = 0; i < t.numel(); ++i) {
            t[i] = static_cast<float>(rng.normal());
        }
        ASSERT_EQ(t.numel(), static_cast<std::int64_t>(c) * h * w);
        for (int ci = 0; ci < c; ++ci) {
            for (int hi = 0; hi < h; ++hi) {
                for (int wi = 0; wi < w; ++wi) {
                    const std::int64_t flat =
                        (static_cast<std::int64_t>(ci) * h + hi) * w + wi;
                    ASSERT_EQ(t.at(ci, hi, wi), t[flat])
                        << "(" << ci << "," << hi << "," << wi << ")";
                }
            }
        }
    }
}

TEST(TensorProps, ReshapeRoundTripPreservesData) {
    util::Rng rng(0x5ea9);
    for (int trial = 0; trial < 20; ++trial) {
        const int a = rng.uniform_int(1, 8);
        const int b = rng.uniform_int(1, 8);
        const int c = rng.uniform_int(1, 8);
        nn::Tensor t({a, b, c});
        for (std::int64_t i = 0; i < t.numel(); ++i) {
            t[i] = static_cast<float>(rng.normal());
        }
        const nn::Tensor flat = t.reshaped({a * b * c});
        const nn::Tensor back = flat.reshaped({a, b, c});
        ASSERT_EQ(back.shape(), t.shape());
        for (std::int64_t i = 0; i < t.numel(); ++i) {
            ASSERT_EQ(back[i], t[i]) << i;
        }
    }
}

TEST(TensorProps, ReshapeRejectsElementCountMismatch) {
    nn::Tensor t({2, 3});
    EXPECT_THROW((void)t.reshaped({7}), util::ContractViolation);
}

TEST(TensorProps, OutOfRangeIndexingViolatesContracts) {
    nn::Tensor t({2, 3, 4});
    EXPECT_THROW((void)t.at(2, 0, 0), util::ContractViolation);
    EXPECT_THROW((void)t.at(0, 3, 0), util::ContractViolation);
    EXPECT_THROW((void)t.at(0, 0, 4), util::ContractViolation);
    EXPECT_THROW((void)t[t.numel()], util::ContractViolation);
    EXPECT_THROW((void)t[-1], util::ContractViolation);
}

TEST(TensorProps, AddScaledAndScaleAlgebra) {
    util::Rng rng(0xa15eb9a);
    nn::Tensor t({4, 5});
    nn::Tensor other({4, 5});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.normal());
        other[i] = static_cast<float>(rng.normal());
    }
    nn::Tensor copy = t;
    copy.add_scaled(other, 0.0F);  // no-op
    copy.scale(1.0F);              // no-op
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        ASSERT_EQ(copy[i], t[i]) << i;
    }
    copy.add_scaled(other, 2.0F);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        ASSERT_FLOAT_EQ(copy[i], t[i] + 2.0F * other[i]) << i;
    }
}

TEST(TensorProps, NanAndInfSurviveStorageAndNorms) {
    nn::Tensor t({3});
    t[0] = std::numeric_limits<float>::quiet_NaN();
    t[1] = std::numeric_limits<float>::infinity();
    t[2] = -1.0F;
    EXPECT_TRUE(std::isnan(t[0]));
    EXPECT_TRUE(std::isinf(t[1]));
    EXPECT_TRUE(std::isnan(t.l2_norm()) || std::isinf(t.l2_norm()));
}

/// Pruning edge cases: keep-all is an exact identity; keeping a subset
/// gathers exactly the kept channels' weights.
TEST(TensorProps, ConvPruningKeepAllIsIdentityAndSubsetGathers) {
    util::Rng rng(0x9a26e5);
    nn::Conv2d conv(4, 3, 3, 1, "c", rng);
    const nn::Tensor w_before = conv.weight();

    const nn::LayerPtr keep_all_ptr = conv.clone();
    auto& keep_all = static_cast<nn::Conv2d&>(*keep_all_ptr);
    keep_all.prune_input_channels({0, 1, 2, 3});
    ASSERT_EQ(keep_all.weight().shape(), w_before.shape());
    for (std::int64_t i = 0; i < w_before.numel(); ++i) {
        ASSERT_EQ(keep_all.weight()[i], w_before[i]) << i;
    }

    const nn::LayerPtr subset_ptr = conv.clone();
    auto& subset = static_cast<nn::Conv2d&>(*subset_ptr);
    subset.prune_input_channels({1, 3});
    ASSERT_EQ(subset.in_channels(), 2);
    const std::vector<int> kept = {1, 3};
    for (int oc = 0; oc < 3; ++oc) {
        for (int j = 0; j < 2; ++j) {
            for (int ky = 0; ky < 3; ++ky) {
                for (int kx = 0; kx < 3; ++kx) {
                    ASSERT_EQ(subset.weight().at(oc, j, ky, kx),
                              w_before.at(oc, kept[static_cast<std::size_t>(j)],
                                          ky, kx));
                }
            }
        }
    }
    EXPECT_THROW(subset.prune_input_channels({0, 0}),
                 util::ContractViolation);  // duplicates rejected
    EXPECT_THROW(subset.prune_input_channels({1, 0}),
                 util::ContractViolation);  // must be sorted
}

TEST(QuantizeProps, WeightCodesBoundedAndReconstructionMatchesScale) {
    util::Rng rng(0x9a27);
    for (int trial = 0; trial < 12; ++trial) {
        const int bits = rng.uniform_int(1, 8);
        const int n = rng.uniform_int(4, 400);
        nn::Tensor w({n});
        for (std::int64_t i = 0; i < w.numel(); ++i) {
            w[i] = static_cast<float>(rng.normal());
        }
        const nn::QuantResult q = nn::quantize_weights(w, bits);
        ASSERT_GT(q.scale, 0.0);
        ASSERT_GE(q.mse, 0.0);
        ASSERT_EQ(static_cast<std::int64_t>(q.codes.size()), w.numel());
        const std::int32_t lo = -(1 << (bits - 1));
        const std::int32_t hi = (1 << (bits - 1)) - 1;
        for (const std::int32_t code : q.codes) {
            ASSERT_GE(code, lo);
            ASSERT_LE(code, hi);
        }

        // Fake-quant lands every value on the code lattice.
        nn::Tensor fq = w;
        nn::fake_quantize_weights(fq, bits);
        std::set<float> distinct;
        for (std::int64_t i = 0; i < fq.numel(); ++i) distinct.insert(fq[i]);
        ASSERT_LE(distinct.size(), static_cast<std::size_t>(1) << bits);
    }
}

TEST(QuantizeProps, MoreBitsNeverHurtWeightMse) {
    util::Rng rng(0xb17);
    nn::Tensor w({512});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<float>(rng.normal());
    }
    double prev_mse = std::numeric_limits<double>::infinity();
    for (const int bits : {1, 2, 4, 8}) {
        const nn::QuantResult q = nn::quantize_weights(w, bits);
        // Small epsilon: the scale search is a bracket, not an exact argmin.
        EXPECT_LE(q.mse, prev_mse * 1.001 + 1e-12) << "bits=" << bits;
        prev_mse = q.mse;
    }
}

TEST(QuantizeProps, ActivationRoundTripStaysNonNegativeAndOnLattice) {
    util::Rng rng(0xac7);
    for (int trial = 0; trial < 12; ++trial) {
        const int bits = rng.uniform_int(1, 8);
        const int n = rng.uniform_int(4, 300);
        nn::Tensor a({n});
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            const float v = static_cast<float>(rng.normal());
            a[i] = v > 0.0F ? v : 0.0F;  // post-ReLU range
        }
        const nn::QuantResult q = nn::quantize_activations(a, bits);
        const std::int32_t hi = (1 << bits) - 1;
        for (const std::int32_t code : q.codes) {
            ASSERT_GE(code, 0);
            ASSERT_LE(code, hi);
        }
        nn::Tensor fq = a;
        nn::fake_quantize_activations(fq, bits);
        std::set<float> distinct;
        for (std::int64_t i = 0; i < fq.numel(); ++i) {
            ASSERT_GE(fq[i], 0.0F) << i;
            distinct.insert(fq[i]);
        }
        ASSERT_LE(distinct.size(), static_cast<std::size_t>(1) << bits);
    }
}

/// NaN/inf propagation through the dispatched kernels, pinned for every
/// available backend: gemm and conv2d_forward propagate, ReLU's documented
/// semantics map NaN to zero (`t > 0` is false for NaN).
TEST(QuantizeProps, KernelsPropagateNanAndInf) {
    std::vector<nn::kernels::Backend> backends = {
        nn::kernels::Backend::kScalar};
    if (nn::kernels::avx2_kernels_compiled() &&
        nn::kernels::cpu_supports_avx2()) {
        backends.push_back(nn::kernels::Backend::kAvx2);
    }
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    for (const auto backend : backends) {
        nn::kernels::force_backend(backend);

        // gemm: a NaN column poisons every row; an inf column with positive
        // weights drives rows to +inf.
        const int out_f = 3;
        const int in_f = 10;
        std::vector<float> w(static_cast<std::size_t>(out_f) * in_f, 1.0F);
        std::vector<float> b(static_cast<std::size_t>(out_f), 0.0F);
        std::vector<float> x(static_cast<std::size_t>(in_f), 1.0F);
        std::vector<float> y(static_cast<std::size_t>(out_f));
        x[4] = nan;
        nn::kernels::gemm(out_f, in_f, w.data(), x.data(), b.data(), y.data());
        for (const float v : y) EXPECT_TRUE(std::isnan(v));
        x[4] = inf;
        nn::kernels::gemm(out_f, in_f, w.data(), x.data(), b.data(), y.data());
        for (const float v : y) EXPECT_TRUE(std::isinf(v) && v > 0.0F);

        // conv2d_forward: every output window taps the poisoned center.
        nn::kernels::Conv2dGeom g;
        g.in_channels = 1;
        g.out_channels = 2;
        g.in_h = 3;
        g.in_w = 3;
        g.kernel = 3;
        g.padding = 0;
        std::vector<float> cin(9, 1.0F);
        cin[4] = nan;
        std::vector<float> cw(static_cast<std::size_t>(2) * 9, 1.0F);
        std::vector<float> cb(2, 0.0F);
        std::vector<float> cout(2);
        nn::kernels::conv2d_forward(g, cin.data(), cw.data(), cb.data(),
                                    cout.data());
        EXPECT_TRUE(std::isnan(cout[0]) && std::isnan(cout[1]));

        // ReLU maps NaN to zero on every backend (documented semantics).
        std::vector<float> rin = {nan, -inf, inf, -1.0F, 2.0F};
        std::vector<float> rout(rin.size());
        nn::kernels::bias_act(static_cast<std::int64_t>(rin.size()),
                              rin.data(), 0.0F, nn::kernels::Act::kRelu,
                              rout.data());
        EXPECT_EQ(rout[0], 0.0F);
        EXPECT_EQ(rout[1], 0.0F);
        EXPECT_TRUE(std::isinf(rout[2]) && rout[2] > 0.0F);
        EXPECT_EQ(rout[3], 0.0F);
        EXPECT_FLOAT_EQ(rout[4], 2.0F);
    }
    nn::kernels::clear_backend_override();
}

}  // namespace
