// Arrival-source registry suite: bitwise pins of the historical
// uniform/poisson/bursty streams, registry and parameter-reader error
// paths, the new mmpp/diurnal/csv sources, [arrivals.<label>] /
// [patch.queue] spec sections, the traffic-ablation round-trip, the
// bounded-queue conservation law, and thread/shard invariance of the new
// queue and latency metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/baseline_models.hpp"
#include "energy/power_trace.hpp"
#include "exp/experiment.hpp"
#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "exp/spec_parser.hpp"
#include "sim/arrivals/registry.hpp"
#include "sim/event_gen.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

void expect_same_events(const std::vector<sim::Event>& a,
                        const std::vector<sim::Event>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << i;
        // Bitwise, not approximate: the registry must reproduce the
        // historical draw order exactly.
        EXPECT_EQ(a[i].time_s, b[i].time_s) << i;
    }
}

std::vector<sim::Event> sort_and_number(std::vector<sim::Event> events) {
    std::sort(events.begin(), events.end(),
              [](const sim::Event& a, const sim::Event& b) {
                  return a.time_s < b.time_s;
              });
    for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].id = static_cast<int>(i);
    }
    return events;
}

// --- Bitwise pins of the historical generators -----------------------------

TEST(ArrivalPins, UniformReproducesTheHistoricalStreamBitwise) {
    // The pre-registry ArrivalKind::kUniform body, verbatim.
    util::Rng rng(99);
    std::vector<sim::Event> expected;
    for (int i = 0; i < 500; ++i) {
        expected.push_back({0, rng.uniform(0.0, 13000.0)});
    }
    expected = sort_and_number(std::move(expected));
    expect_same_events(sim::generate_arrivals("uniform", {500, 13000.0, 99}),
                       expected);
}

TEST(ArrivalPins, PoissonReproducesTheHistoricalStreamBitwise) {
    // The pre-registry ArrivalKind::kPoisson body, verbatim.
    util::Rng rng(7);
    std::vector<sim::Event> expected;
    const double rate = 200.0 / 5000.0;
    double t = 0.0;
    while (static_cast<int>(expected.size()) < 200) {
        t += rng.exponential(rate);
        if (t >= 5000.0) t = rng.uniform(0.0, 5000.0);
        expected.push_back({0, t});
    }
    expected = sort_and_number(std::move(expected));
    expect_same_events(sim::generate_arrivals("poisson", {200, 5000.0, 7}),
                       expected);
}

TEST(ArrivalPins, BurstyReproducesTheHistoricalStreamBitwise) {
    // The pre-registry ArrivalKind::kBursty body, verbatim (bursts of 2-5
    // events jittered within 5 s).
    util::Rng rng(123);
    std::vector<sim::Event> expected;
    while (static_cast<int>(expected.size()) < 150) {
        const double burst_time = rng.uniform(0.0, 4000.0);
        const auto burst_size = static_cast<int>(rng.uniform_int(2, 5));
        for (int b = 0;
             b < burst_size && static_cast<int>(expected.size()) < 150; ++b) {
            const double jitter = rng.uniform(0.0, 5.0);
            expected.push_back(
                {0, std::min(burst_time + jitter, 4000.0 - 1e-6)});
        }
    }
    expected = sort_and_number(std::move(expected));
    expect_same_events(sim::generate_arrivals("bursty", {150, 4000.0, 123}),
                       expected);
}

TEST(ArrivalPins, GenerateEventsIsSugarForTheRegistry) {
    for (const auto kind :
         {sim::ArrivalKind::kUniform, sim::ArrivalKind::kPoisson,
          sim::ArrivalKind::kBursty}) {
        sim::EventGenConfig config;
        config.kind = kind;
        config.count = 64;
        config.duration_s = 900.0;
        config.seed = 17;
        expect_same_events(
            sim::generate_events(config),
            sim::generate_arrivals(sim::arrival_kind_name(kind),
                                   {64, 900.0, 17}));
    }
}

// --- Registry API and parameter validation ---------------------------------

TEST(ArrivalRegistry, BuiltinsAreRegisteredAndDescribed) {
    const auto names = sim::arrival_source_names();
    for (const char* name :
         {"uniform", "poisson", "bursty", "mmpp", "diurnal", "csv"}) {
        EXPECT_TRUE(sim::has_arrival_source(name)) << name;
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
        EXPECT_FALSE(sim::arrival_source_description(name).empty()) << name;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_FALSE(sim::has_arrival_source("nope"));
    // Parameter declarations drive spec validation and docs.
    EXPECT_TRUE(sim::arrival_source_param_names("uniform").empty());
    const auto bursty = sim::arrival_source_param_names("bursty");
    EXPECT_NE(std::find(bursty.begin(), bursty.end(), "burst_min"),
              bursty.end());
}

TEST(ArrivalRegistry, UnknownSourceDiagnosticListsRegisteredNames) {
    try {
        (void)sim::make_arrival_source("martian");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("martian"), std::string::npos);
        EXPECT_NE(message.find("uniform"), std::string::npos);
        EXPECT_NE(message.find("poisson"), std::string::npos);
    }
}

TEST(ArrivalRegistry, CustomSourceRegistersAndGenerates) {
    sim::register_arrival_source(
        "test-every-10s",
        [](const sim::ArrivalParams& params) {
            class Source final : public sim::ArrivalSource {
            protected:
                std::vector<sim::Event> sample(
                    const sim::ArrivalContext& ctx) const override {
                    std::vector<sim::Event> events;
                    for (int i = 0; i < ctx.count; ++i) {
                        const double t = 10.0 * (i + 1);
                        if (t < ctx.duration_s) events.push_back({0, t});
                    }
                    return events;
                }
            };
            sim::ArrivalParamReader reader("test-every-10s", params);
            reader.done();
            return std::make_unique<Source>();
        },
        "deterministic 10 s cadence (test fixture)");
    ASSERT_TRUE(sim::has_arrival_source("test-every-10s"));
    const auto events =
        sim::generate_arrivals("test-every-10s", {4, 1000.0, 0});
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].time_s, 10.0);
    EXPECT_EQ(events[3].id, 3);
}

TEST(ArrivalRegistry, ParamReaderRejectsBadValues) {
    // Unknown key.
    EXPECT_THROW(
        (void)sim::make_arrival_source("poisson", {{"rate_scael", "2"}}),
        std::invalid_argument);
    // Non-numeric / non-positive where positive is required.
    EXPECT_THROW(
        (void)sim::make_arrival_source("poisson", {{"rate_scale", "fast"}}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)sim::make_arrival_source("poisson", {{"rate_scale", "0"}}),
        std::invalid_argument);
    // Cross-field contract.
    EXPECT_THROW((void)sim::make_arrival_source(
                     "bursty", {{"burst_min", "9"}, {"burst_max", "3"}}),
                 std::invalid_argument);
    // Fraction bounds.
    EXPECT_THROW((void)sim::make_arrival_source("diurnal", {{"depth", "1.5"}}),
                 std::invalid_argument);
    // mmpp contract: factor >= 1.
    EXPECT_THROW((void)sim::make_arrival_source(
                     "mmpp", {{"burst_rate_factor", "0.5"}}),
                 std::invalid_argument);
    // The diagnostics carry the source name.
    try {
        (void)sim::make_arrival_source("poisson", {{"rate_scale", "-1"}});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("arrival source 'poisson'"),
                  std::string::npos)
            << e.what();
    }
}

// --- The new stochastic sources --------------------------------------------

void expect_well_formed(const std::vector<sim::Event>& events, int count,
                        double duration_s) {
    ASSERT_EQ(events.size(), static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].id, static_cast<int>(i));
        EXPECT_GE(events[i].time_s, 0.0);
        EXPECT_LT(events[i].time_s, duration_s);
        if (i > 0) {
            EXPECT_GE(events[i].time_s, events[i - 1].time_s);
        }
    }
}

TEST(ArrivalSources, MmppAndDiurnalAreWellFormedAndSeedDeterministic) {
    for (const char* name : {"mmpp", "diurnal"}) {
        const auto a = sim::generate_arrivals(name, {300, 6000.0, 42});
        expect_well_formed(a, 300, 6000.0);
        expect_same_events(sim::generate_arrivals(name, {300, 6000.0, 42}),
                           a);
        const auto other = sim::generate_arrivals(name, {300, 6000.0, 43});
        bool differs = false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            differs = differs || a[i].time_s != other[i].time_s;
        }
        EXPECT_TRUE(differs) << name << " ignores its seed";
    }
}

TEST(ArrivalSources, MmppIsBurstierThanUniform) {
    // Dispersion check: the MMPP stream's inter-arrival variance must
    // exceed the uniform stream's (that is its whole point).
    const auto spread = [](const std::vector<sim::Event>& events) {
        double mean = 0.0, var = 0.0;
        for (std::size_t i = 1; i < events.size(); ++i) {
            mean += events[i].time_s - events[i - 1].time_s;
        }
        mean /= static_cast<double>(events.size() - 1);
        for (std::size_t i = 1; i < events.size(); ++i) {
            const double d = events[i].time_s - events[i - 1].time_s - mean;
            var += d * d;
        }
        return var / mean / mean;  // scale-free
    };
    const auto uniform = sim::generate_arrivals("uniform", {400, 8000.0, 5});
    const auto mmpp = sim::generate_arrivals(
        "mmpp", {400, 8000.0, 5}, {{"burst_rate_factor", "16"}});
    EXPECT_GT(spread(mmpp), spread(uniform));
}

TEST(ArrivalSources, CsvReplaysScalesAndFilters) {
    const std::string path = ::testing::TempDir() + "imx_arrivals_test.csv";
    {
        std::ofstream file(path);
        file << "# request log\n"
             << "30.0, whatever\n"
             << "10.5\n"
             << "\n"
             << "999.0\n"
             << "20.25 trailing\n";
    }
    const auto events =
        sim::generate_arrivals("csv", {10, 100.0, 1}, {{"path", path}});
    // 999.0 falls past the 100 s horizon; the rest replay sorted. Replay is
    // seed-independent.
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].time_s, 10.5);
    EXPECT_EQ(events[1].time_s, 20.25);
    EXPECT_EQ(events[2].time_s, 30.0);
    expect_same_events(
        sim::generate_arrivals("csv", {10, 100.0, 77}, {{"path", path}}),
        events);

    // time_scale stretches the replay; the context count caps it.
    const auto scaled = sim::generate_arrivals(
        "csv", {2, 100.0, 1}, {{"path", path}, {"time_scale", "2"}});
    ASSERT_EQ(scaled.size(), 2u);
    EXPECT_EQ(scaled[0].time_s, 21.0);
    EXPECT_EQ(scaled[1].time_s, 40.5);

    EXPECT_THROW((void)sim::make_arrival_source(
                     "csv", {{"path", path + ".does-not-exist"}}),
                 std::invalid_argument);
    EXPECT_THROW((void)sim::make_arrival_source("csv", {}),
                 std::invalid_argument);
    {
        std::ofstream file(path);
        file << "not-a-number\n";
    }
    EXPECT_THROW((void)sim::make_arrival_source("csv", {{"path", path}}),
                 std::invalid_argument);
    std::remove(path.c_str());
}

// --- Spec sections ----------------------------------------------------------

std::string valid_spec() {
    return "[sweep]\n"
           "name = t\n"
           "[system]\n"
           "label = s\n"
           "kind = ours-static\n";
}

void expect_parse_error(const std::string& text, const std::string& needle) {
    try {
        (void)exp::parse_experiment_spec(text, "spec.ini");
        FAIL() << "expected failure containing '" << needle << "'";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
        // Schema failures must carry a file:line anchor.
        EXPECT_EQ(std::string(e.what()).find("spec.ini:"), 0u) << e.what();
    }
}

TEST(ArrivalSpec, SectionsPopulateTheAxis) {
    const auto spec = exp::parse_experiment_spec(
        valid_spec() +
        "[arrivals.base]\nsource = uniform\n"
        "[arrivals.crowd]\nsource = bursty\nburst_min = 6\n"
        "burst_max = 12\n"
        "[patch.queue]\ncapacity = 0, 4, 16\n");
    ASSERT_EQ(spec.arrivals.size(), 2u);
    EXPECT_EQ(spec.arrivals[0].label, "base");
    EXPECT_EQ(spec.arrivals[0].source, "uniform");
    EXPECT_EQ(spec.arrivals[1].label, "crowd");
    EXPECT_EQ(spec.arrivals[1].params.at("burst_min"), "6");
    EXPECT_EQ(spec.queue_capacity, (std::vector<int>{0, 4, 16}));

    const auto specs = exp::expand_experiment(spec, {});
    // 1 trace x 1 system x 2 arrivals x 3 capacities.
    ASSERT_EQ(specs.size(), 6u);
    EXPECT_EQ(specs[0].dims.at("arrivals"), "base");
    EXPECT_EQ(specs[0].dims.at("queue_capacity"), "0");
    EXPECT_NE(specs[5].id.find("arr-crowd"), std::string::npos);
    EXPECT_NE(specs[5].id.find("q16"), std::string::npos);
}

TEST(ArrivalSpec, SchemaErrorsAreHardAndAnchored) {
    expect_parse_error(valid_spec() + "[arrivals.x]\nsource = martian\n",
                       "unknown arrival source");
    expect_parse_error(valid_spec() + "[arrivals.x]\nburst_min = 2\n",
                       "requires 'source = <name>'");
    expect_parse_error(
        valid_spec() + "[arrivals.x]\nsource = poisson\nburst_min = 2\n",
        "which accepts");
    expect_parse_error(
        valid_spec() + "[arrivals.x]\nsource = poisson\nrate_scale = -2\n",
        "rate_scale");
    expect_parse_error(valid_spec() + "[arrivals.]\nsource = uniform\n",
                       "requires a label after the dot");
    expect_parse_error(valid_spec() +
                           "[arrivals.x]\nsource = uniform\n"
                           "[arrivals.x]\nsource = poisson\n",
                       "duplicate arrivals label 'x'");
    expect_parse_error(valid_spec() + "[patch.queue]\ncapacity = 4, -1\n",
                       "non-negative integers");
    expect_parse_error(valid_spec() + "[patch.queue]\ncapacity = 2.5\n",
                       "non-negative integers");
    expect_parse_error(valid_spec() + "[patch.queue]\nsize = 4\n",
                       "unknown key");
    expect_parse_error(valid_spec() +
                           "[patch.queue]\ncapacity = 1\n"
                           "[patch.queue]\ncapacity = 2\n",
                       "duplicate [patch.queue]");
}

TEST(ArrivalSpec, TrafficAblationSpecRoundTripsTheRegisteredExperiment) {
    ASSERT_TRUE(exp::has_experiment("traffic-ablation"));
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/traffic_ablation.ini");
    EXPECT_EQ(spec.name, "traffic-ablation");
    ASSERT_EQ(spec.arrivals.size(), 4u);
    EXPECT_EQ(spec.queue_capacity, (std::vector<int>{0, 4, 16}));

    for (const bool quick : {false, true}) {
        exp::SweepCli cli;
        cli.quick = quick;
        cli.replicas = 2;
        cli.replicas_given = true;
        const auto from_spec = exp::expand_experiment(spec, cli);
        const auto from_registry = exp::build_experiment_scenarios(
            exp::make_experiment("traffic-ablation"), cli);
        ASSERT_EQ(from_spec.size(), from_registry.size());
        for (std::size_t i = 0; i < from_spec.size(); ++i) {
            EXPECT_EQ(from_spec[i].id, from_registry[i].id);
            EXPECT_EQ(from_spec[i].group, from_registry[i].group);
            EXPECT_EQ(from_spec[i].dims, from_registry[i].dims);
            EXPECT_EQ(from_spec[i].replica, from_registry[i].replica);
            EXPECT_EQ(from_spec[i].seed, from_registry[i].seed);
        }
    }
}

// --- Bounded-queue conservation --------------------------------------------

/// Counts observe_missed() feedback; otherwise the plain greedy rule.
class CountingPolicy final : public sim::ExitPolicy {
public:
    int select_exit(const sim::EnergyState& state,
                    const sim::InferenceModel& model) override {
        return delegate_.select_exit(state, model);
    }
    bool continue_inference(const sim::EnergyState& state,
                            const sim::InferenceModel& model, int exit,
                            double confidence) override {
        return delegate_.continue_inference(state, model, exit, confidence);
    }
    void observe_missed() override { ++missed_observed; }

    int missed_observed = 0;

private:
    sim::GreedyAffordablePolicy delegate_;
};

TEST(QueueConservation, EveryArrivalIsAccountedForExactlyOnce) {
    // Slow MCU (2 s per 0.1 MMAC inference) against three 8-event bursts:
    // the capacity-3 queue must fill, drop the overflow, and leave the
    // tail burst's remainder in flight when the trace ends.
    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 50.0;
    cfg.storage.initial_mj = 50.0;
    cfg.storage.leakage_mw = 0.0;
    cfg.mcu.mmacs_per_second = 0.05;
    cfg.queue_capacity = 3;
    const auto trace = energy::PowerTrace::constant(1.0, 60.0, 1.0);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);

    std::vector<sim::Event> events;
    for (const double base : {5.0, 20.0, 56.0}) {
        for (int i = 0; i < 8; ++i) {
            events.push_back({static_cast<int>(events.size()),
                              base + 0.01 * static_cast<double>(i)});
        }
    }
    sim::Simulator simulator(trace, cfg);
    CountingPolicy policy;
    const auto r = simulator.run(events, model, policy);

    EXPECT_GT(r.dropped, 0);
    EXPECT_GT(r.in_flight, 0);
    // The conservation law: every arrival is processed or missed, and the
    // misses decompose into drops + in-flight leftovers + expired events —
    // the policy hears about every miss except the in-flight leftovers.
    EXPECT_EQ(r.total_events(), r.processed_count() + r.missed_count());
    EXPECT_LE(r.dropped + r.in_flight, r.missed_count());
    EXPECT_EQ(policy.missed_observed, r.missed_count() - r.in_flight);
}

TEST(QueueConservation, NoQueueKeepsTheHistoricalAccounting) {
    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 50.0;
    cfg.storage.initial_mj = 50.0;
    cfg.storage.leakage_mw = 0.0;
    cfg.mcu.mmacs_per_second = 0.05;  // 2 s service
    const auto trace = energy::PowerTrace::constant(1.0, 40.0, 1.0);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    std::vector<sim::Event> events = {
        {0, 5.0}, {1, 5.5}, {2, 6.0}, {3, 20.0}};
    sim::Simulator simulator(trace, cfg);
    CountingPolicy policy;
    const auto r = simulator.run(events, model, policy);
    // Arrivals during the busy window are missed outright, never queued or
    // dropped; nothing is pending at the end of this quiet trace.
    EXPECT_EQ(r.dropped, 0);
    EXPECT_EQ(r.in_flight, 0);
    EXPECT_EQ(r.processed_count(), 2);
    EXPECT_EQ(policy.missed_observed, 2);
}

TEST(QueueConservation, BoundedQueueConvertsBusyMissesIntoCompletions) {
    // Identical run except for the queue: buffering a burst must recover
    // events the unbuffered model loses.
    sim::SimConfig cfg;
    cfg.storage.capacity_mj = 50.0;
    cfg.storage.initial_mj = 50.0;
    cfg.storage.leakage_mw = 0.0;
    cfg.mcu.mmacs_per_second = 0.05;
    const auto trace = energy::PowerTrace::constant(1.0, 60.0, 1.0);
    auto model = baselines::FixedBaselineModel("m", 0.1, 90.0, 1.0);
    std::vector<sim::Event> events = {
        {0, 5.0}, {1, 5.5}, {2, 6.0}, {3, 6.5}};

    sim::GreedyAffordablePolicy unbuffered_policy;
    sim::Simulator unbuffered(trace, cfg);
    const auto r0 = unbuffered.run(events, model, unbuffered_policy);

    cfg.queue_capacity = 8;
    sim::GreedyAffordablePolicy buffered_policy;
    sim::Simulator buffered(trace, cfg);
    const auto r8 = buffered.run(events, model, buffered_policy);

    EXPECT_EQ(r0.processed_count(), 1);
    EXPECT_EQ(r8.processed_count(), 4);
    EXPECT_EQ(r8.dropped, 0);
    // Queued completions wait, so their sojourn percentiles stretch.
    EXPECT_GT(r8.latency_percentile_s(0.95), r0.latency_percentile_s(0.95));
}

TEST(QueueBackpressure, ShedDepthIsMonotoneInBacklog) {
    using sim::QueueSlackGreedyPolicy;
    const int exits = 4;  // depths 0..3
    EXPECT_EQ(QueueSlackGreedyPolicy::max_depth_for_backlog(0.0, exits), 3);
    EXPECT_EQ(QueueSlackGreedyPolicy::max_depth_for_backlog(1.0, exits), 0);
    int previous = exits - 1;
    for (double backlog = 0.0; backlog <= 1.0; backlog += 0.05) {
        const int depth =
            QueueSlackGreedyPolicy::max_depth_for_backlog(backlog, exits);
        EXPECT_LE(depth, previous) << backlog;
        previous = depth;
    }
    // Out-of-range backlogs clamp instead of over/underflowing the depth.
    EXPECT_EQ(QueueSlackGreedyPolicy::max_depth_for_backlog(7.0, exits), 0);
    EXPECT_EQ(QueueSlackGreedyPolicy::max_depth_for_backlog(-1.0, exits), 3);
}

TEST(QueueBackpressure, QueueAwarePolicyImprovesABurstyCell) {
    // The traffic-ablation acceptance cell at full scale: oversized bursts
    // against a capacity-4 queue under a 60 s deadline. Shedding exit depth
    // under backlog must strictly lower the p95 sojourn or the drop count
    // (and never worsen both) versus the queue-blind slack policy.
    const auto run_policy = [](const char* policy) {
        const auto spec = exp::parse_experiment_spec(
            std::string("[sweep]\n"
                        "name = qvs\n"
                        "[system]\n"
                        "label = s\n"
                        "kind = ours-policy\n"
                        "policy = ") +
            policy +
            "\n"
            "[arrivals.crowd]\n"
            "source = bursty\n"
            "burst_min = 6\n"
            "burst_max = 12\n"
            "jitter_s = 2\n"
            "[patch.deadline]\n"
            "deadline_s = 60\n"
            "[patch.queue]\n"
            "capacity = 4\n");
        const auto specs = exp::expand_experiment(spec, {});
        return exp::run_sweep(specs, {1}).at(0).metrics;
    };
    const auto blind = run_policy("slack-greedy");
    const auto aware = run_policy("queue-slack-greedy");
    EXPECT_LE(aware.at("p95_latency_s"), blind.at("p95_latency_s"));
    EXPECT_LE(aware.at("dropped"), blind.at("dropped"));
    EXPECT_TRUE(aware.at("p95_latency_s") < blind.at("p95_latency_s") ||
                aware.at("dropped") < blind.at("dropped"))
        << "p95 " << blind.at("p95_latency_s") << " -> "
        << aware.at("p95_latency_s") << ", dropped " << blind.at("dropped")
        << " -> " << aware.at("dropped");
}

// --- Thread and shard invariance of the new metrics ------------------------

std::vector<exp::ScenarioSpec> mini_traffic_grid() {
    const auto spec = exp::parse_experiment_spec(
        "[sweep]\n"
        "name = traffic-mini\n"
        "metrics = processed, dropped, in_flight, p95_latency_s\n"
        "[trace]\n"
        "label = tr\n"
        "duration_s = 900\n"
        "event_count = 40\n"
        "total_harvest_mj = 30\n"
        "[system]\n"
        "label = s\n"
        "kind = ours-policy\n"
        "policy = slack-greedy\n"
        "[arrivals.crowd]\n"
        "source = bursty\n"
        "burst_min = 5\n"
        "burst_max = 9\n"
        "[patch.deadline]\n"
        "deadline_s = 60\n"
        "[patch.queue]\n"
        "capacity = 0, 3\n"
        "[recovery.none]\n"
        "strategy = none\n"
        "[recovery.restart]\n"
        "strategy = restart\n"
        "active_power_mw = 0.02\n"
        "death_threshold_mj = 0.3\n");
    return exp::expand_experiment(spec, {});
}

TEST(TrafficInvariance, MetricsAreIdenticalForAnyThreadCount) {
    const auto specs = mini_traffic_grid();
    // 1 trace x 1 system x 1 arrival cell x 2 capacities x 2 recoveries.
    ASSERT_EQ(specs.size(), 4u);
    const auto serial = exp::run_sweep(specs, {1});
    const auto parallel = exp::run_sweep(specs, {3});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << specs[i].id;
        EXPECT_EQ(serial[i].metrics.count("dropped"), 1u);
        EXPECT_EQ(serial[i].metrics.count("in_flight"), 1u);
        EXPECT_EQ(serial[i].metrics.count("p95_latency_s"), 1u);
    }
    // The unbuffered cells cannot drop; the queue x recovery cross runs.
    EXPECT_EQ(serial[0].metrics.at("dropped"), 0.0);
}

TEST(TrafficInvariance, MetricsSurviveShardJournalAndMergeByteExactly) {
    const auto specs = mini_traffic_grid();
    const auto full = exp::run_sweep(specs, {2});

    const auto header_for = [&](const exp::ShardSpec& shard) {
        exp::JournalHeader header;
        header.experiment = "traffic-mini";
        header.total_specs = specs.size();
        header.shard = shard;
        header.base_seed = exp::kDefaultBaseSeed;
        header.replicas = 1;
        return header;
    };
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        const std::string path = ::testing::TempDir() + "imx_traffic_shard_" +
                                 std::to_string(i) + ".jsonl";
        (void)exp::run_shard(specs, header_for({i, 3}), {1}, path,
                             /*resume=*/false);
        paths.push_back(path);
    }
    const auto merged =
        exp::merge_journal_outcomes(header_for({0, 1}), specs, paths);
    ASSERT_EQ(merged.size(), full.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        // Bit-exact through the %.17g journal round-trip, including the
        // queue and latency-percentile columns.
        EXPECT_EQ(merged[i].metrics, full[i].metrics) << specs[i].id;
    }
}

}  // namespace
