// Tests for the sim/policies module: the slack-aware greedy LUT (monotone
// shallowing as slack shrinks), the slack-binned Q-state layout (StateGrid
// round-trips, historical-index compatibility), the name registry, the
// exp::policy_patch axis, and the sweep-level pin that the extended
// bench_ablation_storage_deadline grid reproduces the pre-policy-axis cells
// bitwise at replica 0 for the pre-existing greedy/qlearning slices.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment_setup.hpp"
#include "core/oracle_model.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "rl/qtable.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/policies/registry.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

namespace {

using namespace imx;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Three-exit model with simple fixed costs for policy unit tests.
class FakeModel final : public sim::InferenceModel {
public:
    [[nodiscard]] int num_exits() const override { return 3; }
    [[nodiscard]] std::int64_t exit_macs(int exit) const override {
        return 100000 * (1 + exit);  // 0.15 / 0.3 / 0.45 mJ at 1.5 mJ/MMAC
    }
    [[nodiscard]] std::int64_t incremental_macs(int from_exit,
                                                int to_exit) const override {
        return exit_macs(to_exit) - (from_exit < 0 ? 0 : exit_macs(from_exit));
    }
    [[nodiscard]] sim::ExitOutcome evaluate(int, int) override {
        return {true, 1.0};
    }
    [[nodiscard]] double model_bytes() const override { return 1024.0; }
};

sim::EnergyState ample_energy(double slack_s) {
    sim::EnergyState s;
    s.level_mj = 10.0;  // affords every exit of FakeModel
    s.capacity_mj = 12.0;
    s.charge_rate_mw = 0.02;
    s.deadline_slack_s = slack_s;
    return s;
}

core::SetupConfig mini_config() {
    core::SetupConfig config;
    config.event_count = 60;
    config.duration_s = 1500.0;
    config.total_harvest_mj = 35.0;
    return config;
}

// --- SlackGreedyPolicy ----------------------------------------------------

TEST(SlackGreedy, MonotonicallyShallowsAsSlackShrinks) {
    FakeModel model;
    sim::SlackGreedyPolicy policy;  // default schedule {0, 45, 120}
    int previous = model.num_exits() - 1;
    for (const double slack : {kInf, 500.0, 120.0, 119.0, 45.0, 44.0, 0.0}) {
        const int chosen = policy.select_exit(ample_energy(slack), model);
        ASSERT_GE(chosen, 0);
        EXPECT_LE(chosen, previous) << "slack " << slack;
        previous = chosen;
    }
    // The schedule thresholds are sharp.
    EXPECT_EQ(policy.select_exit(ample_energy(kInf), model), 2);
    EXPECT_EQ(policy.select_exit(ample_energy(120.0), model), 2);
    EXPECT_EQ(policy.select_exit(ample_energy(119.9), model), 1);
    EXPECT_EQ(policy.select_exit(ample_energy(45.0), model), 1);
    EXPECT_EQ(policy.select_exit(ample_energy(44.9), model), 0);
    EXPECT_EQ(policy.select_exit(ample_energy(0.0), model), 0);
}

TEST(SlackGreedy, MatchesGreedyWithoutDeadline) {
    FakeModel model;
    sim::GreedyAffordablePolicy greedy;
    sim::SlackGreedyPolicy slack_greedy;
    for (const double level : {0.0, 0.2, 0.35, 0.5, 5.0}) {
        sim::EnergyState s = ample_energy(kInf);
        s.level_mj = level;
        EXPECT_EQ(slack_greedy.select_exit(s, model),
                  greedy.select_exit(s, model))
            << "level " << level;
    }
}

TEST(SlackGreedy, AffordabilityStillBinds) {
    FakeModel model;
    sim::SlackGreedyPolicy policy;
    // Ample slack but only exit 0 affordable.
    sim::EnergyState s = ample_energy(kInf);
    s.level_mj = 0.2;
    EXPECT_EQ(policy.select_exit(s, model), 0);
    // No energy at all: keep waiting.
    s.level_mj = 0.0;
    EXPECT_EQ(policy.select_exit(s, model), -1);
}

TEST(SlackGreedy, RejectsMalformedSchedules) {
    EXPECT_THROW(sim::SlackGreedyPolicy(0.0, sim::SlackSchedule{{}}),
                 util::ContractViolation);
    EXPECT_THROW(sim::SlackGreedyPolicy(0.0, sim::SlackSchedule{{5.0, 10.0}}),
                 util::ContractViolation);  // first entry must be 0
    EXPECT_THROW(
        sim::SlackGreedyPolicy(0.0, sim::SlackSchedule{{0.0, 60.0, 30.0}}),
        util::ContractViolation);  // must be non-decreasing
}

TEST(SlackSchedule, DepthCapClampsToModelExits) {
    const sim::SlackSchedule schedule{{0.0, 10.0}};
    // Exits past the schedule's end reuse the last entry.
    EXPECT_EQ(schedule.max_depth(kInf, 5), 4);
    EXPECT_EQ(schedule.max_depth(9.0, 5), 0);
    EXPECT_EQ(schedule.max_depth(10.0, 5), 4);
    EXPECT_EQ(schedule.max_depth(kInf, 1), 0);
}

// --- Slack-binned Q state -------------------------------------------------

TEST(StateGrid, FlattenUnflattenRoundTrips) {
    const rl::StateGrid grid({8, 6, 4});
    EXPECT_EQ(grid.states(), 8u * 6u * 4u);
    for (std::size_t s = 0; s < grid.states(); ++s) {
        const auto bins = grid.unflatten(s);
        ASSERT_EQ(bins.size(), 3u);
        EXPECT_EQ(grid.flatten(bins), s);
    }
    EXPECT_THROW((void)grid.flatten({8, 0, 0}), util::ContractViolation);
    EXPECT_THROW((void)grid.flatten({0, 0}), util::ContractViolation);
    EXPECT_THROW((void)grid.unflatten(grid.states()), util::ContractViolation);
}

TEST(StateGrid, TrailingUnitDimensionPreservesIndices) {
    // The historical (energy x rate) layout is the slack_bins == 1 slice.
    const rl::StateGrid flat({8, 6});
    const rl::StateGrid with_unit({8, 6, 1});
    for (std::size_t level = 0; level < 8; ++level) {
        for (std::size_t rate = 0; rate < 6; ++rate) {
            EXPECT_EQ(with_unit.flatten({level, rate, 0}),
                      flat.flatten({level, rate}));
            EXPECT_EQ(flat.flatten({level, rate}), level * 6 + rate);
        }
    }
}

TEST(QLearningSlackState, SlackBinSplitsStatesAndRoundTrips) {
    sim::RuntimeConfig cfg;
    cfg.slack_bins = 2;
    cfg.max_slack_s = 60.0;
    const sim::QLearningExitPolicy policy(3, cfg);
    EXPECT_EQ(policy.exit_table().num_states(),
              cfg.energy_bins * cfg.rate_bins * 2);

    const rl::StateGrid grid({cfg.energy_bins, cfg.rate_bins, cfg.slack_bins});
    const sim::EnergyState urgent = ample_energy(10.0);   // below 30 s split
    const sim::EnergyState relaxed = ample_energy(50.0);  // above
    const sim::EnergyState none = ample_energy(kInf);     // top bin
    const auto urgent_bins = grid.unflatten(policy.exit_state(urgent));
    const auto relaxed_bins = grid.unflatten(policy.exit_state(relaxed));
    const auto none_bins = grid.unflatten(policy.exit_state(none));
    EXPECT_EQ(urgent_bins[2], 0u);
    EXPECT_EQ(relaxed_bins[2], 1u);
    EXPECT_EQ(none_bins[2], 1u);  // infinity saturates at the top bin
    // Only the slack coordinate differs for the same energy situation.
    EXPECT_EQ(urgent_bins[0], relaxed_bins[0]);
    EXPECT_EQ(urgent_bins[1], relaxed_bins[1]);
}

TEST(QLearningSlackState, SingleSlackBinReproducesHistoricalLayout) {
    const sim::RuntimeConfig cfg;  // slack_bins = 1 (slack-blind default)
    const sim::QLearningExitPolicy policy(3, cfg);
    EXPECT_EQ(policy.exit_table().num_states(),
              cfg.energy_bins * cfg.rate_bins);
    // Slack cannot influence the state index.
    EXPECT_EQ(policy.exit_state(ample_energy(0.0)),
              policy.exit_state(ample_energy(kInf)));
}

TEST(QLearningSlackCap, CapsSelectionAndIncrementalDepth) {
    sim::RuntimeConfig cfg = sim::slack_aware_runtime_config({});
    EXPECT_EQ(cfg.slack_bins, 2u);
    EXPECT_GT(cfg.deadline_miss_penalty, 0.0);
    EXPECT_TRUE(cfg.cap_depth_by_slack);

    FakeModel model;
    sim::QLearningExitPolicy policy(3, cfg);
    policy.set_eval_mode(true);
    // With zero slack every selection collapses to exit 0 regardless of the
    // learned argmax, and no incremental hop is allowed.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(policy.select_exit(ample_energy(0.0), model), 0);
    }
    EXPECT_FALSE(
        policy.continue_inference(ample_energy(0.0), model, 0, 0.0));
    // With infinite slack the cap is the deepest exit: selection is free.
    const int free_choice = policy.select_exit(ample_energy(kInf), model);
    EXPECT_GE(free_choice, 0);
    EXPECT_LT(free_choice, 3);
}

// --- Registry -------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsConstructTheRightTypes) {
    const auto names = sim::policy_names();
    for (const char* expected :
         {"greedy", "slack-greedy", "qlearning", "slack-qlearning"}) {
        EXPECT_TRUE(sim::has_policy(expected)) << expected;
    }
    EXPECT_GE(names.size(), 4u);

    sim::PolicyContext ctx;
    EXPECT_NE(dynamic_cast<sim::GreedyAffordablePolicy*>(
                  sim::make_policy("greedy", ctx).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<sim::SlackGreedyPolicy*>(
                  sim::make_policy("slack-greedy", ctx).get()),
              nullptr);
    const auto q = sim::make_policy("qlearning", ctx);
    EXPECT_NE(dynamic_cast<sim::QLearningExitPolicy*>(q.get()), nullptr);
    const auto slack_q = sim::make_policy("slack-qlearning", ctx);
    EXPECT_NE(dynamic_cast<sim::QLearningExitPolicy*>(slack_q.get()), nullptr);
}

TEST(PolicyRegistry, UnknownNameThrowsWithKnownNames) {
    try {
        sim::make_policy("no-such-policy");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no-such-policy"), std::string::npos);
        EXPECT_NE(what.find("greedy"), std::string::npos);
        EXPECT_NE(what.find("slack-qlearning"), std::string::npos);
    }
}

TEST(PolicyRegistry, CustomRegistrationIsConstructible) {
    struct AlwaysZero final : sim::ExitPolicy {
        int select_exit(const sim::EnergyState&,
                        const sim::InferenceModel&) override {
            return 0;
        }
        bool continue_inference(const sim::EnergyState&,
                                const sim::InferenceModel&, int,
                                double) override {
            return false;
        }
    };
    sim::register_policy("test-always-zero", [](const sim::PolicyContext&) {
        return std::make_unique<AlwaysZero>();
    });
    EXPECT_TRUE(sim::has_policy("test-always-zero"));
    FakeModel model;
    const auto policy = sim::make_policy("test-always-zero");
    EXPECT_EQ(policy->select_exit(ample_energy(kInf), model), 0);
}

// --- Policy axis (exp::policy_patch) --------------------------------------

TEST(PolicyPatch, LabelsDimsAndValidation) {
    const auto patch = exp::policy_patch("slack-greedy");
    EXPECT_EQ(patch.label, "pol-slack-greedy");
    EXPECT_EQ(patch.dims.at("policy"), "slack-greedy");
    EXPECT_EQ(patch.policy, "slack-greedy");
    EXPECT_THROW(exp::policy_patch("no-such-policy"), util::ContractViolation);
}

TEST(PolicyPatch, CrossWithDeadlineKeepsPolicyAndDims) {
    const auto grid = exp::cross_patches(
        {exp::deadline_patch(60.0)},
        {exp::policy_patch("greedy"), exp::policy_patch("slack-greedy")});
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_EQ(grid[0].label, "ddl60s+pol-greedy");
    EXPECT_EQ(grid[0].policy, "greedy");
    EXPECT_EQ(grid[1].label, "ddl60s+pol-slack-greedy");
    EXPECT_EQ(grid[1].policy, "slack-greedy");
    EXPECT_EQ(grid[1].dims.at("deadline_s"), "60");
    EXPECT_EQ(grid[1].dims.at("policy"), "slack-greedy");
}

// --- Sweep-level replica-0 pinning ----------------------------------------

/// The extended bench_ablation_storage_deadline grid shape at mini scale:
/// one kOursPolicy system crossed with storage x deadline x policy patches.
exp::PaperSweep mini_factorial(const std::vector<std::string>& policies,
                               int episodes) {
    exp::PaperSweep sweep;
    sweep.traces = {{"mini", mini_config()}};
    sweep.systems = {{"ours", exp::SystemKind::kOursPolicy, episodes, {}, ""}};
    std::vector<exp::SimPatch> policy_axis;
    for (const auto& name : policies) {
        policy_axis.push_back(exp::policy_patch(name));
    }
    sweep.patches = exp::cross_patches(
        exp::cross_patches(
            {exp::storage_patch(2.0), exp::storage_patch(6.0)},
            {exp::deadline_patch(60.0), exp::deadline_patch(kInf)}),
        policy_axis);
    return sweep;
}

TEST(PolicyAxis, GreedySliceBitwiseMatchesPrePolicyAxisCells) {
    // Replica 0 of the extended (policy-axis) grid must reproduce the
    // pre-existing bench cells: the pol-greedy slice equals the historical
    // kOursStatic system, the pol-qlearning slice the historical
    // kOursQLearning system, cell by cell, bitwise.
    const int episodes = 2;
    const auto extended =
        exp::build_paper_scenarios(mini_factorial({"greedy", "qlearning"},
                                                  episodes));
    ASSERT_EQ(extended.size(), 8u);  // 2 storage x 2 deadline x 2 policies
    const auto extended_outcomes = exp::run_sweep(extended, {2});

    exp::PaperSweep legacy;
    legacy.traces = {{"mini", mini_config()}};
    legacy.systems = {
        {"Q-learning", exp::SystemKind::kOursQLearning, episodes, {}, ""},
        {"static LUT", exp::SystemKind::kOursStatic, 0, {}, ""}};
    legacy.patches = exp::cross_patches(
        {exp::storage_patch(2.0), exp::storage_patch(6.0)},
        {exp::deadline_patch(60.0), exp::deadline_patch(kInf)});
    const auto old = exp::build_paper_scenarios(legacy);
    const auto old_outcomes = exp::run_sweep(old, {2});

    int compared = 0;
    for (std::size_t i = 0; i < extended.size(); ++i) {
        const std::string& policy = extended[i].dims.at("policy");
        const std::string legacy_system =
            policy == "greedy" ? "static LUT" : "Q-learning";
        for (std::size_t j = 0; j < old.size(); ++j) {
            if (old[j].dims.at("system") != legacy_system) continue;
            if (old[j].dims.at("storage_mj") !=
                    extended[i].dims.at("storage_mj") ||
                old[j].dims.at("deadline_s") !=
                    extended[i].dims.at("deadline_s")) {
                continue;
            }
            ++compared;
            for (const auto& [metric, value] : old_outcomes[j].metrics) {
                EXPECT_EQ(extended_outcomes[i].metrics.at(metric), value)
                    << extended[i].id << " vs " << old[j].id << " " << metric;
            }
        }
    }
    EXPECT_EQ(compared, 8);  // every extended cell found its legacy twin
}

TEST(PolicyAxis, SlackAwareGreedyLowersDeadlineMissOnMiniTrace) {
    // The headline claim of the deadline benches at mini scale: under a
    // tight deadline the slack-aware LUT strictly lowers the deadline-miss
    // rate of its slack-blind counterpart.
    const auto setup = core::make_paper_setup(mini_config());
    auto run_policy = [&](const std::string& name) {
        core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                         setup.exit_accuracy);
        auto config = setup.multi_exit_sim;
        config.deadline_s = 30.0;
        const auto policy = sim::make_policy(name);
        sim::Simulator simulator(setup.trace, config);
        return simulator.run(setup.events, model, *policy);
    };
    const auto greedy = run_policy("greedy");
    const auto slack = run_policy("slack-greedy");
    EXPECT_LT(slack.deadline_miss_rate(), greedy.deadline_miss_rate());
}

}  // namespace
