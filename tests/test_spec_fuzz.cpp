// Malformed-spec corpus: every entry is a spec file a user could plausibly
// produce by truncation, typo, copy-paste damage, or plain binary garbage.
// The contract under test is uniform — exp::parse_experiment_spec() must
// reject each one by throwing a std::exception (never crashing, never
// silently accepting), and syntax-level rejections must carry a file:line
// diagnostic so the user can find the damage.
#include <gtest/gtest.h>

#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/spec_parser.hpp"

namespace {

using namespace imx;

constexpr const char* kOrigin = "fuzz.ini";

std::string minimal() {
    return "[sweep]\n"
           "name = t\n"
           "[system]\n"
           "label = s\n"
           "kind = ours-policy\n"
           "policy = greedy\n";
}

struct Case {
    const char* name;         ///< which damage this entry models
    std::string text;         ///< the damaged spec
    bool expect_file_line;    ///< diagnostic must contain "fuzz.ini:<line>"
};

std::vector<Case> corpus() {
    std::vector<Case> cases;
    const std::string base = minimal();

    // --- Truncated structure ------------------------------------------------
    cases.push_back({"unclosed section header", base + "[recovery.x\n", true});
    cases.push_back({"header cut mid-name", base + "[recov", true});
    cases.push_back({"empty recovery label", base + "[recovery.]\nstrategy = restart\n",
                     true});
    cases.push_back({"recovery section cut before strategy",
                     base + "[recovery.x]\n", true});
    cases.push_back({"file cut mid-key", base + "[recovery.x]\nstrat", true});
    cases.push_back({"sweep cut before name",
                     "[sweep]\n[system]\nlabel = s\nkind = ours-static\n",
                     false});
    cases.push_back({"system cut before label",
                     "[sweep]\nname = t\n[system]\n", false});

    // --- Bad key = value shapes ---------------------------------------------
    cases.push_back({"key without value separator",
                     base + "[recovery.x]\nstrategy restart\n", true});
    cases.push_back({"empty key", base + "[recovery.x]\n= restart\n", true});
    cases.push_back({"value-less strategy",
                     base + "[recovery.x]\nstrategy =\n", true});
    cases.push_back({"keys before any section",
                     "name = t\n" + base, true});
    cases.push_back({"number where a strategy belongs",
                     base + "[recovery.x]\nstrategy = 42\n", true});
    cases.push_back({"list where a scalar belongs",
                     base + "[recovery.x]\nstrategy = checkpoint\n"
                            "checkpoint_mj = 1, 2\n",
                     true});
    cases.push_back({"negative cost",
                     base + "[recovery.x]\nstrategy = checkpoint\n"
                            "restore_mj = -3\n",
                     true});
    cases.push_back({"negative death threshold",
                     base + "[recovery.x]\nstrategy = restart\n"
                            "death_threshold_mj = -0.1\n",
                     true});
    cases.push_back({"unknown recovery key",
                     base + "[recovery.x]\nstrategy = restart\nwrites = 3\n",
                     true});
    cases.push_back({"misspelled granularity",
                     base + "[recovery.x]\nstrategy = checkpoint\n"
                            "granularity = layers\n",
                     true});

    // --- Malformed [arrivals.*] / [patch.queue] -----------------------------
    cases.push_back({"empty arrivals label",
                     base + "[arrivals.]\nsource = uniform\n", true});
    cases.push_back({"arrivals section cut before source",
                     base + "[arrivals.x]\n", true});
    cases.push_back({"unknown arrival source",
                     base + "[arrivals.x]\nsource = martian\n", true});
    cases.push_back({"param of a different source",
                     base + "[arrivals.x]\nsource = poisson\nburst_min = 2\n",
                     true});
    cases.push_back({"non-numeric arrival param",
                     base + "[arrivals.x]\nsource = poisson\n"
                            "rate_scale = fast\n",
                     true});
    cases.push_back({"negative arrival param",
                     base + "[arrivals.x]\nsource = bursty\njitter_s = -5\n",
                     true});
    cases.push_back({"inverted burst bounds",
                     base + "[arrivals.x]\nsource = bursty\nburst_min = 9\n"
                            "burst_max = 3\n",
                     true});
    cases.push_back({"csv arrivals without a path",
                     base + "[arrivals.x]\nsource = csv\n", true});
    cases.push_back({"csv arrivals with a missing file",
                     base + "[arrivals.x]\nsource = csv\n"
                            "path = does-not-exist.csv\n",
                     true});
    cases.push_back({"negative queue capacity",
                     base + "[patch.queue]\ncapacity = 4, -1\n", true});
    cases.push_back({"fractional queue capacity",
                     base + "[patch.queue]\ncapacity = 2.5\n", true});
    cases.push_back({"non-numeric queue capacity",
                     base + "[patch.queue]\ncapacity = lots\n", true});
    cases.push_back({"queue section without capacities",
                     base + "[patch.queue]\n", true});
    cases.push_back({"unknown queue key",
                     base + "[patch.queue]\nsize = 4\n", true});

    // --- Duplicates ---------------------------------------------------------
    cases.push_back({"duplicate recovery labels",
                     base + "[recovery.x]\nstrategy = restart\n"
                            "[recovery.x]\nstrategy = none\n",
                     true});
    cases.push_back({"duplicate key within a recovery section",
                     base + "[recovery.x]\nstrategy = restart\n"
                            "strategy = none\n",
                     true});
    cases.push_back({"duplicate sweep section",
                     base + "[sweep]\nname = again\n", true});
    cases.push_back({"duplicate arrivals labels",
                     base + "[arrivals.x]\nsource = uniform\n"
                            "[arrivals.x]\nsource = poisson\n",
                     true});
    cases.push_back({"duplicate patch.queue section",
                     base + "[patch.queue]\ncapacity = 1\n"
                            "[patch.queue]\ncapacity = 2\n",
                     true});

    // --- Non-UTF8 / binary junk ---------------------------------------------
    cases.push_back({"latin-1 bytes as a line",
                     base + std::string("\xFF\xFE\xBA\xAD\n"), true});
    cases.push_back({"binary junk inside a section",
                     base + "[recovery.x]\n\x01\x02\x03\x04\n", true});
    cases.push_back({"embedded NUL in a key line",
                     base + std::string("[recovery.x]\nstr\0tegy = r\n", 26),
                     true});
    cases.push_back({"high-bit section name with junk value",
                     base + "[recovery.caf\xC3\xA9]\nstrategy = caf\xC3\xA9\n",
                     true});

    return cases;
}

TEST(SpecFuzz, EveryCorpusEntryFailsLoudlyAndNeverCrashes) {
    for (const auto& entry : corpus()) {
        bool threw = false;
        try {
            (void)exp::parse_experiment_spec(entry.text, kOrigin);
        } catch (const std::exception& e) {
            threw = true;
            const std::string what = e.what();
            EXPECT_FALSE(what.empty()) << entry.name;
            if (entry.expect_file_line) {
                EXPECT_NE(what.find("fuzz.ini:"), std::string::npos)
                    << entry.name << ": " << what;
            }
        }
        EXPECT_TRUE(threw) << entry.name << " was silently accepted";
    }
}

TEST(SpecFuzz, SingleCharacterTruncationsOfAValidSpecNeverCrash) {
    // Chop a valid spec (with a recovery axis) at every byte boundary: each
    // prefix must either parse or throw a std::exception — nothing else.
    const std::string full =
        minimal() + "[recovery.nvm]\nstrategy = checkpoint\n"
                    "granularity = exit\ndeath_threshold_mj = 0.3\n";
    int parsed = 0;
    int rejected = 0;
    for (std::size_t cut = 0; cut <= full.size(); ++cut) {
        try {
            (void)exp::parse_experiment_spec(full.substr(0, cut), kOrigin);
            ++parsed;
        } catch (const std::exception&) {
            ++rejected;
        }
    }
    // The empty prefix and every prefix missing [sweep]/[system] reject; the
    // full text parses. Both outcomes must occur — otherwise the harness is
    // not exercising what it claims to.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 0);
}

TEST(SpecFuzz, RandomByteCorruptionOfAValidSpecNeverCrashes) {
    // Deterministic xorshift so failures reproduce; overwrite a handful of
    // bytes per round with arbitrary (often non-UTF8) values.
    const std::string full =
        minimal() + "[recovery.nvm]\nstrategy = checkpoint\n"
                    "checkpoint_mj = 0.02\n";
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    const auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 200; ++round) {
        std::string mutated = full;
        const int edits = 1 + static_cast<int>(next() % 4);
        for (int e = 0; e < edits; ++e) {
            const auto pos = next() % mutated.size();
            mutated[pos] = static_cast<char>(next() & 0xFF);
        }
        try {
            (void)exp::parse_experiment_spec(mutated, kOrigin);
        } catch (const std::exception&) {
            // Rejection is fine; crashing or throwing a non-std exception
            // would abort the test binary.
        }
    }
    SUCCEED();
}

}  // namespace
