// Accuracy-oracle tests: calibration to the paper anchors, monotonicity
// properties, and the extreme-compression collapse guard.
#include <gtest/gtest.h>

#include "core/accuracy_model.hpp"
#include "core/multi_exit_spec.hpp"

namespace {

using namespace imx;

const compress::NetworkDesc& paper_desc() {
    static const compress::NetworkDesc desc = core::make_paper_network_desc();
    return desc;
}

const core::AccuracyModel& calibrated() {
    static const core::AccuracyModel model(
        paper_desc(), {core::kPaperFullPrecisionAcc.begin(),
                       core::kPaperFullPrecisionAcc.end()});
    return model;
}

TEST(AccuracyModel, FullPrecisionReturnsBaseAccuracies) {
    const auto acc = calibrated().exit_accuracy(
        compress::Policy::full_precision(paper_desc().num_layers()));
    for (int e = 0; e < 3; ++e) {
        EXPECT_NEAR(acc[static_cast<std::size_t>(e)],
                    core::kPaperFullPrecisionAcc[static_cast<std::size_t>(e)],
                    1e-9);
    }
}

TEST(AccuracyModel, CalibrationResidualIsSmall) {
    EXPECT_LT(calibrated().calibration_residual(), 1.5);  // pp, rms
}

TEST(AccuracyModel, UniformAnchorReproduced) {
    const auto acc =
        calibrated().exit_accuracy(core::uniform_baseline_policy());
    for (int e = 0; e < 3; ++e) {
        EXPECT_NEAR(acc[static_cast<std::size_t>(e)],
                    core::kPaperUniformAcc[static_cast<std::size_t>(e)], 2.5)
            << "exit " << e;
    }
}

TEST(AccuracyModel, NonuniformAnchorReproduced) {
    const auto acc =
        calibrated().exit_accuracy(core::reference_nonuniform_policy());
    for (int e = 0; e < 3; ++e) {
        EXPECT_NEAR(acc[static_cast<std::size_t>(e)],
                    core::kPaperNonuniformAcc[static_cast<std::size_t>(e)], 2.5)
            << "exit " << e;
    }
}

TEST(AccuracyModel, NonuniformBeatsUniformAtEveryExit) {
    // The headline claim of Fig. 1b.
    const auto uniform =
        calibrated().exit_accuracy(core::uniform_baseline_policy());
    const auto nonuniform =
        calibrated().exit_accuracy(core::reference_nonuniform_policy());
    for (int e = 0; e < 3; ++e) {
        EXPECT_GT(nonuniform[static_cast<std::size_t>(e)],
                  uniform[static_cast<std::size_t>(e)])
            << "exit " << e;
    }
}

class PruneMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PruneMonotonicity, MorePruningNeverHelps) {
    const int layer = GetParam();
    compress::Policy policy =
        compress::Policy::uniform(paper_desc().num_layers(), 0.9, 8, 8);
    double prev = 1e9;
    for (double alpha = 0.9; alpha >= 0.3; alpha -= 0.1) {
        policy[static_cast<std::size_t>(layer)].preserve_ratio = alpha;
        double mean = 0.0;
        for (const double a : calibrated().exit_accuracy(policy)) mean += a;
        EXPECT_LE(mean, prev + 1e-9) << "alpha " << alpha;
        prev = mean;
    }
}

INSTANTIATE_TEST_SUITE_P(Layers, PruneMonotonicity,
                         ::testing::Range(0, 11));

class BitsMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BitsMonotonicity, FewerBitsNeverHelp) {
    const int layer = GetParam();
    compress::Policy policy =
        compress::Policy::uniform(paper_desc().num_layers(), 0.9, 8, 8);
    double prev = -1.0;
    for (int bits = 1; bits <= 8; ++bits) {
        policy[static_cast<std::size_t>(layer)].weight_bits = bits;
        double mean = 0.0;
        for (const double a : calibrated().exit_accuracy(policy)) mean += a;
        EXPECT_GE(mean, prev - 1e-9) << "bits " << bits;
        prev = mean;
    }
}

INSTANTIATE_TEST_SUITE_P(Layers, BitsMonotonicity, ::testing::Range(0, 11));

TEST(AccuracyModel, ExtremePruningCollapsesTowardChance) {
    const compress::Policy destroyed =
        compress::Policy::uniform(paper_desc().num_layers(), 0.05, 8, 8);
    const auto acc = calibrated().exit_accuracy(destroyed);
    for (const double a : acc) {
        EXPECT_LT(a, calibrated().chance_accuracy() + 5.0);
    }
}

TEST(AccuracyModel, DeeperExitsMoreAccurateUnderUniformPolicies) {
    for (double alpha = 0.5; alpha <= 1.0; alpha += 0.25) {
        const auto acc = calibrated().exit_accuracy(
            compress::Policy::uniform(paper_desc().num_layers(), alpha, 8, 8));
        EXPECT_LT(acc[0], acc[1]);
        EXPECT_LT(acc[1], acc[2]);
    }
}

TEST(AccuracyModel, OnlyPathLayersAffectAnExit) {
    // Compressing Conv3/Conv4 (exit-3-only layers) must not change exit 1.
    compress::Policy policy =
        compress::Policy::uniform(paper_desc().num_layers(), 1.0, 8, 8);
    const double before = calibrated().accuracy(policy, 0);
    policy[static_cast<std::size_t>(paper_desc().layer_index("Conv3"))] =
        {0.3, 2, 2};
    policy[static_cast<std::size_t>(paper_desc().layer_index("Conv4"))] =
        {0.3, 2, 2};
    EXPECT_NEAR(calibrated().accuracy(policy, 0), before, 1e-9);
    EXPECT_LT(calibrated().accuracy(policy, 2), 73.0);
}

TEST(AccuracyModel, ExplicitParamsSkipCalibration) {
    core::SensitivityParams params;
    params.quant_base = 0.0;
    params.prune_base = 0.0;
    const core::AccuracyModel model(paper_desc(), {60.0, 70.0, 73.0}, {},
                                    params);
    // Zero sensitivities (above the knee): compression is free.
    auto policy = compress::Policy::uniform(paper_desc().num_layers(), 0.6, 2, 2);
    const auto acc = model.exit_accuracy(policy);
    EXPECT_NEAR(acc[2], 73.0, 1.0);
}

}  // namespace
