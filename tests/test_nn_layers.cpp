// Tests for tensors and layers, including finite-difference gradient checks
// of every differentiable layer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/tensor.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;
using nn::Tensor;

TEST(TensorTest, ShapeAndNumel) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.dim(1), 3);
    for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(TensorTest, AccessorsRoundTrip) {
    Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 7.0F;
    EXPECT_EQ(t.at(1, 2, 3), 7.0F);
    Tensor m({3, 5});
    m.at2(2, 4) = -1.0F;
    EXPECT_EQ(m.at2(2, 4), -1.0F);
    Tensor w({2, 3, 3, 3});
    w.at(1, 2, 0, 1) = 2.5F;
    EXPECT_EQ(w.at(1, 2, 0, 1), 2.5F);
}

TEST(TensorTest, OutOfBoundsThrows) {
    Tensor t({2, 2, 2});
    EXPECT_THROW((void)t.at(2, 0, 0), util::ContractViolation);
    EXPECT_THROW((void)t.at(0, -1, 0), util::ContractViolation);
    EXPECT_THROW((void)t[8], util::ContractViolation);
}

TEST(TensorTest, ReshapePreservesData) {
    Tensor t({2, 3});
    for (std::int64_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
    const Tensor r = t.reshaped({6});
    for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
    EXPECT_THROW((void)t.reshaped({5}), util::ContractViolation);
}

TEST(TensorTest, AddScaledAndScale) {
    Tensor a = Tensor::full({3}, 1.0F);
    Tensor b = Tensor::full({3}, 2.0F);
    a.add_scaled(b, 0.5F);
    EXPECT_EQ(a[0], 2.0F);
    a.scale(2.0F);
    EXPECT_EQ(a[2], 4.0F);
}

TEST(TensorTest, KaimingBoundsRespectFanIn) {
    util::Rng rng(5);
    const int fan_in = 50;
    const Tensor t = Tensor::kaiming_uniform({10, 50}, fan_in, rng);
    const float bound = std::sqrt(6.0F / fan_in);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_LE(std::fabs(t[i]), bound);
    }
    EXPECT_GT(t.abs_max(), bound * 0.5F);  // actually spread out
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checking machinery.

/// Numerically check d(sum(forward(x) * w))/dx against layer.backward.
void check_input_gradient(nn::Layer& layer, const Tensor& input,
                          float tolerance = 2e-2F) {
    util::Rng rng(99);
    Tensor out = layer.forward(input);
    Tensor weighting(out.shape());
    for (std::int64_t i = 0; i < weighting.numel(); ++i) {
        weighting[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const Tensor analytic = layer.backward(weighting);

    const float eps = 1e-2F;
    Tensor x = input;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        const float saved = x[i];
        x[i] = saved + eps;
        Tensor up = layer.forward(x);
        x[i] = saved - eps;
        Tensor down = layer.forward(x);
        x[i] = saved;
        double num = 0.0;
        for (std::int64_t j = 0; j < up.numel(); ++j) {
            num += static_cast<double>(weighting[j]) * (up[j] - down[j]);
        }
        num /= 2.0 * eps;
        EXPECT_NEAR(analytic[i], num, tolerance)
            << "input grad mismatch at flat index " << i;
    }
}

/// Numerically check parameter gradients of a layer.
void check_param_gradients(nn::Layer& layer, const Tensor& input,
                           float tolerance = 2e-2F) {
    util::Rng rng(17);
    Tensor out = layer.forward(input);
    Tensor weighting(out.shape());
    for (std::int64_t i = 0; i < weighting.numel(); ++i) {
        weighting[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    layer.zero_grad();
    (void)layer.backward(weighting);

    const auto params = layer.parameters();
    const auto grads = layer.gradients();
    ASSERT_EQ(params.size(), grads.size());
    const float eps = 1e-2F;
    for (std::size_t p = 0; p < params.size(); ++p) {
        Tensor& param = *params[p];
        for (std::int64_t i = 0; i < param.numel(); ++i) {
            const float saved = param[i];
            param[i] = saved + eps;
            Tensor up = layer.forward(input);
            param[i] = saved - eps;
            Tensor down = layer.forward(input);
            param[i] = saved;
            double num = 0.0;
            for (std::int64_t j = 0; j < up.numel(); ++j) {
                num += static_cast<double>(weighting[j]) * (up[j] - down[j]);
            }
            num /= 2.0 * eps;
            EXPECT_NEAR((*grads[p])[i], num, tolerance)
                << "param " << p << " grad mismatch at index " << i;
        }
    }
}

Tensor random_tensor(nn::Shape shape, std::uint64_t seed, float lo = -1.0F,
                     float hi = 1.0F) {
    util::Rng rng(seed);
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    }
    return t;
}

// ---------------------------------------------------------------------------

TEST(Conv2dTest, KnownValueSingleChannel) {
    util::Rng rng(1);
    nn::Conv2d conv(1, 1, 2, 0, "c", rng);
    // weight = [[1, 2], [3, 4]], bias = 0.5
    conv.weight().at(0, 0, 0, 0) = 1.0F;
    conv.weight().at(0, 0, 0, 1) = 2.0F;
    conv.weight().at(0, 0, 1, 0) = 3.0F;
    conv.weight().at(0, 0, 1, 1) = 4.0F;
    conv.bias()[0] = 0.5F;
    Tensor x({1, 2, 2});
    x.at(0, 0, 0) = 1.0F;
    x.at(0, 0, 1) = 2.0F;
    x.at(0, 1, 0) = 3.0F;
    x.at(0, 1, 1) = 4.0F;
    const Tensor y = conv.forward(x);
    ASSERT_EQ(y.shape(), (nn::Shape{1, 1, 1}));
    EXPECT_NEAR(y[0], 1 + 4 + 9 + 16 + 0.5, 1e-5);
}

TEST(Conv2dTest, OutputShapeWithPadding) {
    util::Rng rng(2);
    nn::Conv2d conv(3, 8, 5, 2, "c", rng);
    EXPECT_EQ(conv.output_shape({3, 14, 14}), (nn::Shape{8, 14, 14}));
    EXPECT_EQ(conv.macs({3, 14, 14}), 8LL * 14 * 14 * 3 * 25);
    EXPECT_EQ(conv.param_count(), 8LL * 3 * 25 + 8);
}

TEST(Conv2dTest, GradientCheckNoPadding) {
    util::Rng rng(3);
    nn::Conv2d conv(2, 3, 3, 0, "c", rng);
    const Tensor x = random_tensor({2, 5, 5}, 10);
    check_input_gradient(conv, x);
    check_param_gradients(conv, x);
}

TEST(Conv2dTest, GradientCheckWithPadding) {
    util::Rng rng(4);
    nn::Conv2d conv(2, 2, 3, 1, "c", rng);
    const Tensor x = random_tensor({2, 4, 4}, 11);
    check_input_gradient(conv, x);
    check_param_gradients(conv, x);
}

TEST(Conv2dTest, ImportanceMatchesManualL1) {
    util::Rng rng(5);
    nn::Conv2d conv(2, 2, 1, 0, "c", rng);
    conv.weight().at(0, 0, 0, 0) = 1.0F;
    conv.weight().at(0, 1, 0, 0) = -2.0F;
    conv.weight().at(1, 0, 0, 0) = 3.0F;
    conv.weight().at(1, 1, 0, 0) = -4.0F;
    const auto imp = conv.input_channel_importance();
    EXPECT_NEAR(imp[0], 4.0, 1e-9);
    EXPECT_NEAR(imp[1], 6.0, 1e-9);
}

TEST(Conv2dTest, PruneInputChannelsShrinksWeights) {
    util::Rng rng(6);
    nn::Conv2d conv(4, 3, 3, 1, "c", rng);
    const float w_kept = conv.weight().at(1, 2, 0, 0);
    conv.prune_input_channels({0, 2});
    EXPECT_EQ(conv.in_channels(), 2);
    EXPECT_EQ(conv.weight().shape(), (nn::Shape{3, 2, 3, 3}));
    EXPECT_EQ(conv.weight().at(1, 1, 0, 0), w_kept);
    const Tensor x = random_tensor({2, 4, 4}, 12);
    EXPECT_NO_THROW(conv.forward(x));
}

TEST(Conv2dTest, PruneOutputChannelsShrinksBias) {
    util::Rng rng(7);
    nn::Conv2d conv(2, 4, 3, 1, "c", rng);
    conv.bias()[3] = 9.0F;
    conv.prune_output_channels({1, 3});
    EXPECT_EQ(conv.out_channels(), 2);
    EXPECT_EQ(conv.bias()[1], 9.0F);
}

TEST(Conv2dTest, PruneRejectsBadKeepLists) {
    util::Rng rng(8);
    nn::Conv2d conv(4, 4, 3, 1, "c", rng);
    EXPECT_THROW(conv.prune_input_channels({}), util::ContractViolation);
    EXPECT_THROW(conv.prune_input_channels({2, 1}), util::ContractViolation);
    EXPECT_THROW(conv.prune_input_channels({0, 0}), util::ContractViolation);
    EXPECT_THROW(conv.prune_input_channels({0, 4}), util::ContractViolation);
}

TEST(LinearTest, KnownValue) {
    util::Rng rng(9);
    nn::Linear fc(2, 2, "fc", rng);
    fc.weight().at2(0, 0) = 1.0F;
    fc.weight().at2(0, 1) = 2.0F;
    fc.weight().at2(1, 0) = -1.0F;
    fc.weight().at2(1, 1) = 0.5F;
    fc.bias()[0] = 0.1F;
    fc.bias()[1] = -0.1F;
    Tensor x({2}, {3.0F, 4.0F});
    const Tensor y = fc.forward(x);
    EXPECT_NEAR(y[0], 3 + 8 + 0.1, 1e-5);
    EXPECT_NEAR(y[1], -3 + 2 - 0.1, 1e-5);
}

TEST(LinearTest, GradientCheck) {
    util::Rng rng(10);
    nn::Linear fc(5, 4, "fc", rng);
    const Tensor x = random_tensor({5}, 13);
    check_input_gradient(fc, x);
    check_param_gradients(fc, x);
}

TEST(LinearTest, PruneInputsAndOutputs) {
    util::Rng rng(11);
    nn::Linear fc(6, 4, "fc", rng);
    fc.prune_inputs({0, 1, 5});
    EXPECT_EQ(fc.in_features(), 3);
    fc.prune_outputs({2, 3});
    EXPECT_EQ(fc.out_features(), 2);
    const Tensor x = random_tensor({3}, 14);
    EXPECT_EQ(fc.forward(x).numel(), 2);
}

TEST(ReluTest, MasksNegativesAndRoutesGradient) {
    nn::Relu relu;
    Tensor x({4}, {-1.0F, 2.0F, 0.0F, 3.0F});
    const Tensor y = relu.forward(x);
    EXPECT_EQ(y[0], 0.0F);
    EXPECT_EQ(y[1], 2.0F);
    EXPECT_EQ(y[2], 0.0F);
    Tensor g({4}, {1.0F, 1.0F, 1.0F, 1.0F});
    const Tensor gx = relu.backward(g);
    EXPECT_EQ(gx[0], 0.0F);
    EXPECT_EQ(gx[1], 1.0F);
    EXPECT_EQ(gx[2], 0.0F);
    EXPECT_EQ(gx[3], 1.0F);
}

TEST(MaxPoolTest, SelectsMaxAndRoutesGradient) {
    nn::MaxPool2d pool(2);
    Tensor x({1, 2, 4}, {1.0F, 5.0F, 2.0F, 0.0F,  //
                          3.0F, 4.0F, 8.0F, 7.0F});
    const Tensor y = pool.forward(x);
    ASSERT_EQ(y.shape(), (nn::Shape{1, 1, 2}));
    EXPECT_EQ(y[0], 5.0F);
    EXPECT_EQ(y[1], 8.0F);
    Tensor g({1, 1, 2}, {1.0F, 2.0F});
    const Tensor gx = pool.backward(g);
    EXPECT_EQ(gx.at(0, 0, 1), 1.0F);  // argmax of first window
    EXPECT_EQ(gx.at(0, 1, 2), 2.0F);  // argmax of second window
    EXPECT_EQ(gx.at(0, 0, 0), 0.0F);
}

TEST(MaxPoolTest, FloorsOddDimensions) {
    nn::MaxPool2d pool(2);
    EXPECT_EQ(pool.output_shape({3, 7, 7}), (nn::Shape{3, 3, 3}));
}

TEST(FlattenTest, RoundTrip) {
    nn::Flatten flatten;
    const Tensor x = random_tensor({2, 3, 4}, 15);
    const Tensor y = flatten.forward(x);
    EXPECT_EQ(y.shape(), (nn::Shape{24}));
    const Tensor gx = flatten.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
    EXPECT_EQ(gx[5], x[5]);
}

TEST(TanhTest, GradientCheck) {
    nn::Tanh tanh_layer;
    const Tensor x = random_tensor({6}, 16, -2.0F, 2.0F);
    check_input_gradient(tanh_layer, x, 1e-2F);
}

TEST(SigmoidTest, GradientCheckAndRange) {
    nn::Sigmoid sig;
    const Tensor x = random_tensor({6}, 18, -3.0F, 3.0F);
    const Tensor y = sig.forward(x);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_GT(y[i], 0.0F);
        EXPECT_LT(y[i], 1.0F);
    }
    check_input_gradient(sig, x, 1e-2F);
}

TEST(LayerTest, CloneIsDeepCopy) {
    util::Rng rng(20);
    nn::Conv2d conv(2, 2, 3, 1, "orig", rng);
    auto copy = conv.clone();
    auto* conv_copy = dynamic_cast<nn::Conv2d*>(copy.get());
    ASSERT_NE(conv_copy, nullptr);
    conv_copy->weight().fill(0.0F);
    EXPECT_GT(conv.weight().abs_max(), 0.0F);  // original untouched
    EXPECT_EQ(copy->name(), "orig");
}

}  // namespace
