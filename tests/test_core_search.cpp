// Compression-search tests: evaluator scoring, DDPG/random/annealing search
// behaviour under the paper constraints.
#include <gtest/gtest.h>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"

namespace {

using namespace imx;

struct SearchFixture : public ::testing::Test {
    SearchFixture()
        : setup(core::make_paper_setup()),
          oracle(setup.network, {core::kPaperFullPrecisionAcc.begin(),
                                 core::kPaperFullPrecisionAcc.end()}),
          trace_eval(setup.trace, setup.events, core::paper_storage_config(),
                     core::kEnergyPerMMacMj),
          evaluator(setup.network, oracle, trace_eval,
                    core::paper_constraints(), true) {}

    core::ExperimentSetup setup;
    core::AccuracyModel oracle;
    core::StaticTraceEvaluator trace_eval;
    core::PolicyEvaluator evaluator;
};

TEST_F(SearchFixture, ScoreFlagsConstraintViolations) {
    const auto full = evaluator.score(
        compress::Policy::full_precision(setup.network.num_layers()));
    EXPECT_FALSE(full.flops_ok);  // 1.92M > 1.15M
    EXPECT_FALSE(full.size_ok);   // 547 KB > 16 KB
    EXPECT_FALSE(full.feasible());

    const auto ref = evaluator.score(core::reference_nonuniform_policy());
    EXPECT_TRUE(ref.feasible());
    EXPECT_GT(ref.racc, 0.2);
    EXPECT_LT(ref.racc, 1.0);
}

TEST_F(SearchFixture, TraceAwareRewardDiffersFromPlainMean) {
    const core::PolicyEvaluator plain(setup.network, oracle, trace_eval,
                                      core::paper_constraints(), false);
    const auto policy = core::reference_nonuniform_policy();
    const double aware = evaluator.score(policy).racc;
    const double mean = plain.score(policy).racc;
    // Plain mean ignores missed events, so it reads higher.
    EXPECT_GT(mean, aware);
}

TEST_F(SearchFixture, RandomSearchFindsFeasiblePolicies) {
    core::SearchConfig cfg;
    cfg.episodes = 60;
    cfg.seed = 11;
    core::CompressionSearch search(evaluator, cfg);
    const auto r = search.run_random();
    EXPECT_TRUE(r.found_feasible);
    EXPECT_EQ(r.evaluations, 60);
    EXPECT_EQ(r.episode_reward.size(), 60u);
    EXPECT_TRUE(compress::satisfies(setup.network, r.best_policy,
                                    core::paper_constraints()));
}

TEST_F(SearchFixture, AnnealingImprovesOnUniformStart) {
    core::SearchConfig cfg;
    cfg.episodes = 150;
    cfg.seed = 13;
    core::CompressionSearch search(evaluator, cfg);
    const double uniform_racc =
        evaluator.score(core::uniform_baseline_policy()).racc;
    const auto r = search.run_annealing();
    EXPECT_TRUE(r.found_feasible);
    EXPECT_GT(r.best_reward, uniform_racc);
}

TEST_F(SearchFixture, DdpgFindsFeasibleAndBeatsItsWarmup) {
    core::SearchConfig cfg;
    cfg.episodes = 80;
    cfg.warmup_episodes = 16;
    cfg.seed = 17;
    core::CompressionSearch search(evaluator, cfg);
    const auto r = search.run_ddpg();
    EXPECT_TRUE(r.found_feasible);
    EXPECT_TRUE(compress::satisfies(setup.network, r.best_policy,
                                    core::paper_constraints()));
    EXPECT_EQ(static_cast<int>(r.episode_reward.size()), 80);
}

TEST_F(SearchFixture, RefinedDdpgAtLeastMatchesDdpg) {
    core::SearchConfig cfg;
    cfg.episodes = 60;
    cfg.warmup_episodes = 16;
    cfg.seed = 19;
    core::CompressionSearch search(evaluator, cfg);
    const auto raw = search.run_ddpg();
    const auto refined = search.run_ddpg_refined();
    EXPECT_GE(refined.best_reward, raw.best_reward - 1e-9);
    EXPECT_TRUE(refined.found_feasible);
}

TEST_F(SearchFixture, SearchedPoliciesStayOnTheGrid) {
    core::SearchConfig cfg;
    cfg.episodes = 40;
    cfg.seed = 23;
    core::CompressionSearch search(evaluator, cfg);
    for (const auto& result :
         {search.run_random(), search.run_annealing()}) {
        for (const auto& lp : result.best_policy.layers) {
            // alpha on the 0.05 grid.
            const double steps = lp.preserve_ratio / compress::kPreserveStep;
            EXPECT_NEAR(steps, std::round(steps), 1e-6);
            EXPECT_GE(lp.weight_bits, compress::kMinBits);
            EXPECT_LE(lp.weight_bits, compress::kMaxBits);
            EXPECT_GE(lp.activation_bits, compress::kMinBits);
            EXPECT_LE(lp.activation_bits, compress::kMaxBits);
        }
    }
}

TEST_F(SearchFixture, DeterministicForFixedSeed) {
    core::SearchConfig cfg;
    cfg.episodes = 30;
    cfg.seed = 29;
    core::CompressionSearch a(evaluator, cfg);
    core::CompressionSearch b(evaluator, cfg);
    const auto ra = a.run_random();
    const auto rb = b.run_random();
    EXPECT_EQ(ra.best_reward, rb.best_reward);
    for (std::size_t l = 0; l < ra.best_policy.size(); ++l) {
        EXPECT_EQ(ra.best_policy[l].preserve_ratio,
                  rb.best_policy[l].preserve_ratio);
        EXPECT_EQ(ra.best_policy[l].weight_bits, rb.best_policy[l].weight_bits);
    }
}

}  // namespace
