// Tests for the one-call pipeline facade and the canonical experiment setup.
#include <gtest/gtest.h>

#include "core/multi_exit_spec.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace imx;

TEST(ExperimentSetup, CarriesThePaperBudget) {
    const auto setup = core::make_paper_setup();
    EXPECT_NEAR(setup.trace.total_energy(), 281.5, 0.1);
    EXPECT_EQ(setup.events.size(), 500u);
    EXPECT_NEAR(setup.trace.duration(), 13000.0, 5.0);
    // Deployed policy fits the MCU flash target.
    EXPECT_LE(compress::model_bytes(setup.network, setup.deployed_policy),
              core::kSizeTargetBytes);
    // Oracle accuracy is monotone across exits for the reference policy.
    EXPECT_LT(setup.exit_accuracy[0], setup.exit_accuracy[1]);
    EXPECT_LT(setup.exit_accuracy[1], setup.exit_accuracy[2]);
}

TEST(ExperimentSetup, SimConfigsShareEnvironmentDifferInMode) {
    const auto setup = core::make_paper_setup();
    EXPECT_EQ(setup.multi_exit_sim.mode, sim::ExecutionMode::kMultiExit);
    EXPECT_EQ(setup.checkpointed_sim.mode, sim::ExecutionMode::kCheckpointed);
    EXPECT_EQ(setup.multi_exit_sim.storage.capacity_mj,
              setup.checkpointed_sim.storage.capacity_mj);
    EXPECT_EQ(setup.multi_exit_sim.mcu.energy_per_mmac_mj,
              setup.checkpointed_sim.mcu.energy_per_mmac_mj);
}

TEST(Pipeline, DefaultRunProducesConsistentReport) {
    core::PipelineConfig config;
    config.learning_episodes = 6;  // keep the test quick
    const auto report = core::run_pipeline(config);

    ASSERT_EQ(report.exit_accuracy.size(), 3u);
    ASSERT_EQ(report.exit_macs.size(), 3u);
    EXPECT_TRUE(report.fits_flash);
    EXPECT_EQ(report.learning_curve.size(), 6u);
    EXPECT_EQ(report.static_lut.total_events(), 500);
    EXPECT_EQ(report.learned.total_events(), 500);
    EXPECT_GT(report.static_lut.iepmj(), 0.3);
    EXPECT_GT(report.learned.iepmj(), 0.3);
    // Costs are increasing across exits.
    EXPECT_LT(report.exit_macs[0], report.exit_macs[1]);
    EXPECT_LT(report.exit_macs[1], report.exit_macs[2]);
}

TEST(Pipeline, DeterministicAcrossRuns) {
    core::PipelineConfig config;
    config.learning_episodes = 4;
    const auto a = core::run_pipeline(config);
    const auto b = core::run_pipeline(config);
    EXPECT_EQ(a.learned.correct_count(), b.learned.correct_count());
    EXPECT_EQ(a.static_lut.correct_count(), b.static_lut.correct_count());
    EXPECT_EQ(a.learning_curve, b.learning_curve);
}

TEST(Pipeline, SearchModeDeploysAFeasiblePolicy) {
    core::PipelineConfig config;
    config.run_search = true;
    config.search.episodes = 40;
    config.search.warmup_episodes = 12;
    config.learning_episodes = 4;
    const auto report = core::run_pipeline(config);
    EXPECT_TRUE(report.fits_flash);
    const auto desc = core::make_paper_network_desc();
    EXPECT_TRUE(compress::satisfies(desc, report.deployed_policy,
                                    core::paper_constraints()));
}

}  // namespace
