// Dispatch-selection coverage for the kernel layer: forced-scalar,
// forced-AVX2, unknown IMX_KERNEL (hard error, not a silent fallback), the
// CPU-detection default — plus the golden pin that scalar dispatch
// reproduces every registered experiment's --quick aggregate CSV byte-exact
// (FNV-1a hashes captured from the pre-kernel-layer implementation).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "nn/kernels/kernels.hpp"

namespace {

using namespace imx;
using nn::kernels::Backend;

bool avx2_available() {
    return nn::kernels::avx2_kernels_compiled() &&
           nn::kernels::cpu_supports_avx2();
}

/// Scoped IMX_KERNEL value; restores the previous value (or unset) on exit.
class ScopedKernelEnv {
public:
    explicit ScopedKernelEnv(const char* value) {
        const char* old = std::getenv("IMX_KERNEL");
        had_old_ = old != nullptr;
        if (had_old_) old_ = old;
        if (value == nullptr) {
            ::unsetenv("IMX_KERNEL");
        } else {
            ::setenv("IMX_KERNEL", value, 1);
        }
    }
    ~ScopedKernelEnv() {
        if (had_old_) {
            ::setenv("IMX_KERNEL", old_.c_str(), 1);
        } else {
            ::unsetenv("IMX_KERNEL");
        }
    }
    ScopedKernelEnv(const ScopedKernelEnv&) = delete;
    ScopedKernelEnv& operator=(const ScopedKernelEnv&) = delete;

private:
    bool had_old_ = false;
    std::string old_;
};

TEST(KernelDispatch, ParseBackendAcceptsKnownNamesOnly) {
    EXPECT_EQ(nn::kernels::parse_backend("scalar"), Backend::kScalar);
    EXPECT_EQ(nn::kernels::parse_backend("avx2"), Backend::kAvx2);
    EXPECT_THROW((void)nn::kernels::parse_backend("sse2"),
                 std::runtime_error);
    EXPECT_THROW((void)nn::kernels::parse_backend("Scalar"),
                 std::runtime_error);
    EXPECT_THROW((void)nn::kernels::parse_backend(""), std::runtime_error);
}

TEST(KernelDispatch, EnvForcedScalarWins) {
    ScopedKernelEnv env("scalar");
    EXPECT_EQ(nn::kernels::resolve_backend_from_env(), Backend::kScalar);
    ASSERT_TRUE(nn::kernels::env_forced_backend().has_value());
    EXPECT_EQ(*nn::kernels::env_forced_backend(), Backend::kScalar);
}

TEST(KernelDispatch, EnvForcedAvx2WinsWhenSupported) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    ScopedKernelEnv env("avx2");
    EXPECT_EQ(nn::kernels::resolve_backend_from_env(), Backend::kAvx2);
}

TEST(KernelDispatch, UnknownEnvValueIsAHardError) {
    ScopedKernelEnv env("neon");
    EXPECT_THROW((void)nn::kernels::resolve_backend_from_env(),
                 std::runtime_error);
    EXPECT_THROW((void)nn::kernels::env_forced_backend(), std::runtime_error);
}

TEST(KernelDispatch, EmptyEnvMeansAutoDetection) {
    ScopedKernelEnv env("");
    const Backend resolved = nn::kernels::resolve_backend_from_env();
    EXPECT_EQ(resolved,
              avx2_available() ? Backend::kAvx2 : Backend::kScalar);
    EXPECT_FALSE(nn::kernels::env_forced_backend().has_value());
}

TEST(KernelDispatch, ForceBackendOverridesAndClears) {
    nn::kernels::force_backend(Backend::kScalar);
    EXPECT_EQ(nn::kernels::active_backend(), Backend::kScalar);
    if (avx2_available()) {
        nn::kernels::force_backend(Backend::kAvx2);
        EXPECT_EQ(nn::kernels::active_backend(), Backend::kAvx2);
    }
    nn::kernels::clear_backend_override();
}

TEST(KernelDispatch, ForcedBackendActuallyRuns) {
    nn::kernels::force_backend(Backend::kScalar);
    const auto before = nn::kernels::counters_snapshot();
    std::vector<float> w = {1.0F, 2.0F};
    std::vector<float> x = {3.0F};
    std::vector<float> b = {0.5F, -0.5F};
    std::vector<float> y(2);
    nn::kernels::gemm(2, 1, w.data(), x.data(), b.data(), y.data());
    const auto after = nn::kernels::counters_snapshot();
    EXPECT_EQ(after.gemm_calls, before.gemm_calls + 1);
    EXPECT_EQ(after.gemm_macs, before.gemm_macs + 2);
    EXPECT_FLOAT_EQ(y[0], 3.5F);
    EXPECT_FLOAT_EQ(y[1], 5.5F);
    nn::kernels::clear_backend_override();
}

// --- golden pin -----------------------------------------------------------

std::uint64_t fnv1a(const std::string& bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string hex64(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Run one registered experiment's --quick grid in-process and hash its
/// aggregate CSV.
std::string quick_aggregate_hash(const std::string& name) {
    exp::SweepCli cli;
    cli.quick = true;
    cli.replicas = 1;
    cli.replicas_given = true;
    cli.threads = 1;
    const exp::Experiment experiment = exp::make_experiment(name);
    const std::vector<exp::ScenarioSpec> specs =
        exp::build_experiment_scenarios(experiment, cli);
    const std::vector<exp::ScenarioOutcome> outcomes = exp::run_sweep(
        specs, exp::RunnerConfig{cli.threads});
    const std::string path =
        testing::TempDir() + "imx_kernels_golden_" + name + ".csv";
    exp::write_aggregate_csv(path, exp::aggregate(specs, outcomes));
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());
    return hex64(fnv1a(buf.str()));
}

/// FNV-1a hashes of every registered experiment's quick aggregate CSV
/// (--quick --replicas 1, default base seed), captured from the historical
/// per-layer loops. Scalar dispatch must reproduce them byte for byte; a
/// mismatch means the scalar kernels (or anything upstream of the goldens)
/// moved. Adding an experiment to the registry fails the coverage check
/// below until its hash is added here.
const std::map<std::string, std::string>& expected_hashes() {
    // Refreshed when the queue/latency metrics (p50/p95/p99_latency_s,
    // dropped, in_flight) joined sim_metrics(): every simulator-driven
    // CSV gained those columns (values of the historical columns are
    // untouched — the stdout goldens pin that). The search/accuracy grids
    // (ablation-search, fig1b, fig4) kept their hashes.
    static const std::map<std::string, std::string> hashes = {
        {"ablation-deadline-policy", "0xb2546bb06660bd11"},
        {"ablation-runtime", "0x32fb9c2848af4aca"},
        {"ablation-search", "0x00ffc400f9c5e956"},
        {"ablation-storage-deadline", "0x9f7e256299ba8392"},
        {"ablation-trace", "0x7f87d0d6092d9db5"},
        {"fig1b-exit-accuracy", "0x56866c6ed17bfa85"},
        {"fig4-compression-policy", "0x90692be3ba2607dd"},
        {"fig5-iepmj", "0x7dd0238d69197ec0"},
        {"fig6-flops", "0xed000779c70c82d2"},
        {"fig7a-runtime-learning", "0x877bc05baf7ab07e"},
        {"fig7b-exit-distribution", "0x3a899065cc64f99f"},
        {"harvester-ablation", "0xc141e5c4d3cd46a1"},
        // latency-table's quick grid coincides with fig5-iepmj's, so the
        // aggregate CSVs (and hashes) are identical by construction.
        {"latency-table", "0x7dd0238d69197ec0"},
        {"recovery-ablation", "0x26beb06604f93440"},
        {"traffic-ablation", "0x2ac4de37c001c798"},
    };
    return hashes;
}

TEST(KernelGoldens, ScalarDispatchReproducesEveryQuickGoldenByteExact) {
    nn::kernels::force_backend(Backend::kScalar);
    for (const auto& [name, expected] : expected_hashes()) {
        EXPECT_EQ(quick_aggregate_hash(name), expected) << name;
    }
    nn::kernels::clear_backend_override();
}

TEST(KernelGoldens, EveryRegisteredExperimentIsPinned) {
    for (const std::string& name : exp::experiment_names()) {
        EXPECT_EQ(expected_hashes().count(name), 1u)
            << "experiment '" << name
            << "' has no golden hash in test_kernels_dispatch.cpp";
    }
}

/// The sweep pipeline drives the analytic oracle models, not the float NN
/// kernels, so the backend must be unobservable in sweep output: the AVX2
/// path has to produce the same bytes as the pinned scalar goldens.
TEST(KernelGoldens, Avx2DispatchMatchesScalarGolden) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 unavailable";
    nn::kernels::force_backend(Backend::kAvx2);
    EXPECT_EQ(quick_aggregate_hash("fig5-iepmj"),
              expected_hashes().at("fig5-iepmj"));
    nn::kernels::clear_backend_override();
}

}  // namespace
