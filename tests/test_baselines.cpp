// Baseline model tests.
#include <gtest/gtest.h>

#include "baselines/baseline_models.hpp"
#include "util/contracts.hpp"

namespace {

using namespace imx;

TEST(Baselines, PaperCharacterizations) {
    const auto sonic = baselines::make_sonic_net();
    EXPECT_EQ(sonic.exit_macs(0), 2000000);
    EXPECT_NEAR(sonic.accuracy_percent(), 75.4, 1e-9);

    const auto sparse = baselines::make_sparse_net();
    EXPECT_EQ(sparse.exit_macs(0), 11400000);
    EXPECT_NEAR(sparse.accuracy_percent(), 82.7, 1e-9);

    const auto lenet = baselines::make_lenet_cifar();
    EXPECT_EQ(lenet.exit_macs(0), 720000);
    EXPECT_NEAR(lenet.accuracy_percent(), 74.7, 1e-9);
}

TEST(Baselines, SingleExitContracts) {
    auto sonic = baselines::make_sonic_net();
    EXPECT_EQ(sonic.num_exits(), 1);
    EXPECT_THROW((void)sonic.exit_macs(1), util::ContractViolation);
    EXPECT_THROW((void)sonic.evaluate(0, 1), util::ContractViolation);
    EXPECT_EQ(sonic.incremental_macs(-1, 0), sonic.exit_macs(0));
}

TEST(Baselines, EvaluateDeterministicAndCalibrated) {
    auto lenet = baselines::make_lenet_cifar();
    int correct = 0;
    const int n = 20000;
    for (int ev = 0; ev < n; ++ev) {
        const auto a = lenet.evaluate(ev, 0);
        const auto b = lenet.evaluate(ev, 0);
        EXPECT_EQ(a.correct, b.correct);
        EXPECT_EQ(a.confidence, 1.0);
        correct += a.correct ? 1 : 0;
    }
    EXPECT_NEAR(100.0 * correct / n, 74.7, 1.0);
}

TEST(Baselines, SharedSeedGivesSharedDifficulty) {
    // With the same seed, an event that the weaker model solves is also
    // solved by any model with higher accuracy (same latent difficulty).
    auto weak = baselines::FixedBaselineModel("weak", 1.0, 50.0, 1.0, 42);
    auto strong = baselines::FixedBaselineModel("strong", 1.0, 90.0, 1.0, 42);
    for (int ev = 0; ev < 1000; ++ev) {
        if (weak.evaluate(ev, 0).correct) {
            EXPECT_TRUE(strong.evaluate(ev, 0).correct) << "event " << ev;
        }
    }
}

}  // namespace
