// Unit tests for the util module: RNG, math, stats, CSV, table, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <vector>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace imx::util;

TEST(Contracts, ExpectsThrowsOnViolation) {
    EXPECT_THROW([] { IMX_EXPECTS(1 == 2); }(), ContractViolation);
    EXPECT_NO_THROW([] { IMX_EXPECTS(1 == 1); }());
    EXPECT_THROW([] { IMX_ENSURES(false); }(), ContractViolation);
    EXPECT_THROW([] { IMX_ASSERT(false); }(), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
    try {
        IMX_EXPECTS(2 + 2 == 5);
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
        EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
    }
}

TEST(Rng, DeterministicForSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.begin(), 2);
    EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
    EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, CategoricalProportionalToWeights) {
    Rng rng(19);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    for (int i = 0; i < 20000; ++i) {
        ones += rng.categorical(weights) == 1 ? 1 : 0;
    }
    EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
    Rng rng(1);
    std::vector<double> empty;
    EXPECT_THROW((void)rng.categorical(empty), ContractViolation);
    std::vector<double> zeros = {0.0, 0.0};
    EXPECT_THROW((void)rng.categorical(zeros), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(23);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(29);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(MathTest, SoftmaxSumsToOne) {
    std::vector<double> logits = {1.0, 2.0, 3.0, -1.0};
    const auto p = softmax(logits);
    double sum = 0.0;
    for (const double x : p) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(MathTest, SoftmaxStableForLargeLogits) {
    std::vector<double> logits = {1000.0, 1001.0};
    const auto p = softmax(logits);
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
    EXPECT_FALSE(std::isnan(p[0]));
}

TEST(MathTest, EntropyUniformIsLogN) {
    std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
    EXPECT_NEAR(entropy(p), std::log(4.0), 1e-12);
    EXPECT_NEAR(normalized_entropy(p), 1.0, 1e-12);
}

TEST(MathTest, EntropyDeterministicIsZero) {
    std::vector<double> p = {1.0, 0.0, 0.0};
    EXPECT_NEAR(entropy(p), 0.0, 1e-12);
    EXPECT_NEAR(normalized_entropy(p), 0.0, 1e-12);
}

TEST(MathTest, ArgmaxFirstOfTies) {
    EXPECT_EQ(argmax({1.0, 3.0, 3.0, 2.0}), 1u);
}

TEST(MathTest, SigmoidSymmetry) {
    EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
    EXPECT_NEAR(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12);
    EXPECT_FALSE(std::isnan(sigmoid(-1000.0)));
    EXPECT_FALSE(std::isnan(sigmoid(1000.0)));
}

TEST(MathTest, ClampAndLerp) {
    EXPECT_EQ(clamp(5, 0, 3), 3);
    EXPECT_EQ(clamp(-1, 0, 3), 0);
    EXPECT_EQ(clamp(2, 0, 3), 2);
    EXPECT_NEAR(lerp(0.0, 10.0, 0.25), 2.5, 1e-12);
}

TEST(MathTest, KahanSumAccurate) {
    std::vector<double> values(100000, 0.1);
    EXPECT_NEAR(kahan_sum(values), 10000.0, 1e-9);
}

TEST(Stats, RunningStatsMatchesNaive) {
    Rng rng(31);
    RunningStats stats;
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-5.0, 9.0);
        stats.add(v);
        values.push_back(v);
    }
    EXPECT_NEAR(stats.mean(), mean(values), 1e-9);
    EXPECT_NEAR(stats.stddev(), stddev(values), 1e-9);
    EXPECT_EQ(stats.count(), 1000u);
}

TEST(Stats, MergeEqualsCombinedStream) {
    Rng rng(37);
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal(2.0, 3.0);
        (i % 2 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, QuantileInterpolates) {
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(quantile(v, 1.0), 4.0, 1e-12);
    EXPECT_NEAR(quantile(v, 0.5), 2.5, 1e-12);
}

TEST(Stats, PercentileIsExactNearestRank) {
    const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
    // Nearest rank never interpolates: every answer is a sample value.
    EXPECT_EQ(percentile(sorted, 0.0), 1.0);
    EXPECT_EQ(percentile(sorted, 0.2), 1.0);  // ceil(0.2 * 5) = rank 1
    EXPECT_EQ(percentile(sorted, 0.5), 3.0);
    EXPECT_EQ(percentile(sorted, 0.9), 5.0);
    EXPECT_EQ(percentile(sorted, 1.0), 5.0);
}

TEST(Stats, PercentileEdgeCases) {
    // Empty sample: quiet NaN, not a crash or a sentinel.
    EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
    // A single sample is every percentile.
    const std::vector<double> one = {42.0};
    EXPECT_EQ(percentile(one, 0.0), 42.0);
    EXPECT_EQ(percentile(one, 0.5), 42.0);
    EXPECT_EQ(percentile(one, 1.0), 42.0);
    // NaNs at the tail propagate into high percentiles instead of silently
    // vanishing; low percentiles stay finite.
    const std::vector<double> tail_nan = {1.0, 2.0,
                                          std::numeric_limits<double>::quiet_NaN()};
    EXPECT_EQ(percentile(tail_nan, 0.5), 2.0);
    EXPECT_TRUE(std::isnan(percentile(tail_nan, 1.0)));
}

TEST(Stats, PercentileCollectorMergeMatchesCombinedStream) {
    Rng rng(11);
    PercentileCollector a, b, all;
    for (int i = 0; i < 401; ++i) {
        const double v = rng.uniform(-3.0, 12.0);
        (i % 3 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    ASSERT_EQ(a.count(), all.count());
    for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
        // Exact, order-independent: bitwise equality, not tolerance.
        EXPECT_EQ(a.percentile(q), all.percentile(q)) << q;
    }
    PercentileCollector empty;
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_TRUE(std::isnan(empty.percentile(0.5)));
    // NaN samples survive collection (partitioned to the tail, see
    // percentile()'s contract) without poisoning the finite percentiles.
    PercentileCollector with_nan;
    with_nan.add(1.0);
    with_nan.add(std::numeric_limits<double>::quiet_NaN());
    with_nan.add(0.5);
    EXPECT_EQ(with_nan.percentile(0.5), 1.0);
    EXPECT_TRUE(std::isnan(with_nan.percentile(1.0)));
}

TEST(Stats, PearsonPerfectCorrelation) {
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    for (double& y : ys) y = -y;
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, RunningStatsSingleSampleIsDegenerateButDefined) {
    RunningStats stats;
    stats.add(3.25);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_EQ(stats.mean(), 3.25);
    EXPECT_EQ(stats.min(), 3.25);
    EXPECT_EQ(stats.max(), 3.25);
    EXPECT_EQ(stats.variance(), 0.0);
    // Bessel's correction is undefined at n = 1; the accumulator reports 0
    // rather than dividing by zero, so downstream confidence intervals
    // collapse to a point instead of going NaN.
    EXPECT_EQ(stats.sample_variance(), 0.0);
    EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(Stats, RunningStatsEmptyAccessorsAreZero) {
    const RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.min(), 0.0);
    EXPECT_EQ(stats.max(), 0.0);
    EXPECT_EQ(stats.sum(), 0.0);
}

TEST(Stats, RunningStatsPropagatesNanAndInf) {
    RunningStats with_nan;
    with_nan.add(1.0);
    with_nan.add(std::nan(""));
    // A NaN sample must poison the moments, not vanish silently.
    EXPECT_TRUE(std::isnan(with_nan.mean()));
    EXPECT_TRUE(std::isnan(with_nan.variance()));
    EXPECT_EQ(with_nan.count(), 2u);

    RunningStats with_inf;
    with_inf.add(1.0);
    with_inf.add(std::numeric_limits<double>::infinity());
    EXPECT_TRUE(std::isinf(with_inf.mean()));
    EXPECT_EQ(with_inf.max(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(with_inf.min(), 1.0);
}

TEST(Stats, RunningStatsMergeWithEmptyIsIdentityBitwise) {
    RunningStats stats;
    for (const double v : {0.5, -1.25, 3.0, 7.75}) stats.add(v);
    const double mean_before = stats.mean();
    const double var_before = stats.variance();

    RunningStats empty;
    stats.merge(empty);  // right identity
    EXPECT_EQ(stats.count(), 4u);
    EXPECT_EQ(stats.mean(), mean_before);
    EXPECT_EQ(stats.variance(), var_before);

    RunningStats other;  // left identity: empty.merge(x) == x
    other.merge(stats);
    EXPECT_EQ(other.count(), 4u);
    EXPECT_EQ(other.mean(), mean_before);
    EXPECT_EQ(other.variance(), var_before);
}

TEST(Stats, RunningStatsMergeIsAssociativeBitwiseOnBinaryFractions) {
    // Welford's parallel merge is NOT bitwise-associative for arbitrary
    // doubles (the correction term rounds differently under different
    // groupings). On samples whose partial means and M2 terms are exactly
    // representable binary fractions, every intermediate is exact, so any
    // merge tree must agree bit for bit. This pins the merge arithmetic:
    // a regression to a naive (and inexact-on-exact-input) formula fails.
    // The odd integers 1..15 are chosen so every intermediate — running
    // means, merge deltas, delta*n_b/n corrections, M2 terms — is a small
    // integer under every grouping below (hand-checked).
    const std::vector<double> chunk_a = {1.0, 3.0};
    const std::vector<double> chunk_b = {5.0, 7.0};
    const std::vector<double> chunk_c = {9.0, 11.0, 13.0, 15.0};
    const auto fill = [](const std::vector<double>& values) {
        RunningStats stats;
        for (const double v : values) stats.add(v);
        return stats;
    };

    // (a + b) + c
    RunningStats left = fill(chunk_a);
    left.merge(fill(chunk_b));
    left.merge(fill(chunk_c));
    // a + (b + c)
    RunningStats bc = fill(chunk_b);
    bc.merge(fill(chunk_c));
    RunningStats right = fill(chunk_a);
    right.merge(bc);
    // The single-stream fold is the reference.
    RunningStats serial;
    for (const auto* chunk : {&chunk_a, &chunk_b, &chunk_c}) {
        for (const double v : *chunk) serial.add(v);
    }

    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.mean(), right.mean());
    EXPECT_EQ(left.variance(), right.variance());
    EXPECT_EQ(left.mean(), serial.mean());
    EXPECT_EQ(left.variance(), serial.variance());
    EXPECT_EQ(left.min(), serial.min());
    EXPECT_EQ(left.max(), serial.max());
}

TEST(Stats, EmaConvergesToConstant) {
    Ema ema(0.5);
    EXPECT_FALSE(ema.initialized());
    ema.update(10.0);
    EXPECT_NEAR(ema.value(), 10.0, 1e-12);  // first sample initializes
    for (int i = 0; i < 50; ++i) ema.update(4.0);
    EXPECT_NEAR(ema.value(), 4.0, 1e-9);
}

TEST(Csv, ParseWithHeader) {
    const auto t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_EQ(t.header.size(), 3u);
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.column_index("b"), 1u);
    const auto col = t.numeric_column("c");
    EXPECT_EQ(col, (std::vector<double>{3.0, 6.0}));
}

TEST(Csv, SkipsCommentsAndBlankLines) {
    const auto t = parse_csv("# comment\nx,y\n\n1,2\n");
    EXPECT_EQ(t.rows.size(), 1u);
}

TEST(Csv, MissingColumnThrows) {
    const auto t = parse_csv("a,b\n1,2\n");
    EXPECT_THROW((void)t.column_index("zz"), std::out_of_range);
}

TEST(Csv, WriterRoundTrip) {
    const std::string path = "/tmp/imx_csv_test.csv";
    {
        CsvWriter w(path);
        w.write_header({"time_s", "power_mw"});
        w.write_row(std::vector<double>{0.0, 1.5});
        w.write_row(std::vector<double>{1.0, 2.5});
    }
    const auto t = read_csv(path);
    EXPECT_EQ(t.rows.size(), 2u);
    EXPECT_NEAR(t.numeric_column("power_mw")[1], 2.5, 1e-12);
    std::remove(path.c_str());
}

TEST(TableTest, RendersAlignedColumns) {
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row_numeric("beta", {2.5}, 1);
    const std::string s = t.to_string();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(TableTest, BarScalesWithValue) {
    EXPECT_EQ(bar(10.0, 10.0, 10), std::string(10, '#'));
    const std::string half = bar(5.0, 10.0, 10);
    EXPECT_EQ(half.substr(0, 5), "#####");
    EXPECT_EQ(half.substr(5), std::string(5, ' '));
}

}  // namespace
