// SynthCIFAR dataset tests.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_cifar.hpp"

namespace {

using namespace imx;

data::SynthCifarConfig small_config() {
    data::SynthCifarConfig cfg;
    cfg.num_samples = 200;
    cfg.seed = 11;
    return cfg;
}

TEST(SynthCifar, DeterministicForSeed) {
    const auto a = data::make_synth_cifar(small_config());
    const auto b = data::make_synth_cifar(small_config());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.labels, b.labels);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::int64_t j = 0; j < a.images[i].numel(); j += 97) {
            EXPECT_EQ(a.images[i][j], b.images[i][j]);
        }
    }
}

TEST(SynthCifar, DifferentSeedsDiffer) {
    auto cfg = small_config();
    const auto a = data::make_synth_cifar(cfg);
    cfg.seed = 12;
    const auto b = data::make_synth_cifar(cfg);
    EXPECT_NE(a.labels, b.labels);
}

TEST(SynthCifar, ShapesLabelsAndRange) {
    const auto ds = data::make_synth_cifar(small_config());
    ASSERT_EQ(ds.size(), 200u);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_EQ(ds.images[i].shape(), (nn::Shape{3, 32, 32}));
        EXPECT_GE(ds.labels[i], 0);
        EXPECT_LT(ds.labels[i], 10);
        for (std::int64_t j = 0; j < ds.images[i].numel(); j += 53) {
            EXPECT_GE(ds.images[i][j], 0.0F);
            EXPECT_LE(ds.images[i][j], 1.0F);
        }
    }
}

TEST(SynthCifar, AllClassesRepresented) {
    auto cfg = small_config();
    cfg.num_samples = 500;
    const auto ds = data::make_synth_cifar(cfg);
    std::vector<int> counts(10, 0);
    for (const int l : ds.labels) ++counts[static_cast<std::size_t>(l)];
    for (int c = 0; c < 10; ++c) EXPECT_GT(counts[static_cast<std::size_t>(c)], 10);
}

TEST(SynthCifar, ClassesAreVisuallySeparated) {
    auto cfg = small_config();
    cfg.num_samples = 400;
    cfg.noise_level = 0.05;
    const auto ds = data::make_synth_cifar(cfg);

    // Mean image per class; distance between class means should dominate
    // within-class spread for at least the color cue.
    std::vector<std::vector<double>> mean_rgb(10, std::vector<double>(3, 0.0));
    std::vector<int> counts(10, 0);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto& img = ds.images[i];
        const auto l = static_cast<std::size_t>(ds.labels[i]);
        ++counts[l];
        for (int c = 0; c < 3; ++c) {
            double sum = 0.0;
            for (int y = 0; y < 32; ++y) {
                for (int x = 0; x < 32; ++x) sum += img.at(c, y, x);
            }
            mean_rgb[l][static_cast<std::size_t>(c)] += sum / (32.0 * 32.0);
        }
    }
    double max_gap = 0.0;
    for (int a = 0; a < 10; ++a) {
        for (int b = a + 1; b < 10; ++b) {
            double d = 0.0;
            for (int c = 0; c < 3; ++c) {
                const double va = mean_rgb[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] / counts[static_cast<std::size_t>(a)];
                const double vb = mean_rgb[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)] / counts[static_cast<std::size_t>(b)];
                d += (va - vb) * (va - vb);
            }
            max_gap = std::max(max_gap, std::sqrt(d));
        }
    }
    EXPECT_GT(max_gap, 0.1);  // some class pair has a clear color gap
}

TEST(SynthCifar, SplitIsDisjointAndSized) {
    const auto ds = data::make_synth_cifar(small_config());
    const auto [train, test] = data::split(ds, 0.25, 3);
    EXPECT_EQ(test.size(), 50u);
    EXPECT_EQ(train.size(), 150u);
    EXPECT_EQ(train.num_classes, ds.num_classes);
}

TEST(SynthCifar, LabelNoiseRateApproximatesP) {
    auto cfg = small_config();
    cfg.num_samples = 2000;
    auto ds = data::make_synth_cifar(cfg);
    const auto original = ds.labels;
    data::inject_label_noise(ds, 0.3, 5);
    int flipped = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        flipped += ds.labels[i] != original[i] ? 1 : 0;
        EXPECT_GE(ds.labels[i], 0);
        EXPECT_LT(ds.labels[i], 10);
    }
    EXPECT_NEAR(flipped / 2000.0, 0.3, 0.04);
}

TEST(SynthCifar, CueStrengthZeroRemovesStructure) {
    auto cfg = small_config();
    cfg.cue_strength = 0.0;
    cfg.noise_level = 0.0;
    const auto ds = data::make_synth_cifar(cfg);
    // With no texture/shape cue and no noise, images are flat color fields:
    // per-channel variance within an image ~ 0.
    const auto& img = ds.images[0];
    for (int c = 0; c < 3; ++c) {
        double mean = 0.0;
        double var = 0.0;
        for (int y = 0; y < 32; ++y) {
            for (int x = 0; x < 32; ++x) mean += img.at(c, y, x);
        }
        mean /= 1024.0;
        for (int y = 0; y < 32; ++y) {
            for (int x = 0; x < 32; ++x) {
                var += (img.at(c, y, x) - mean) * (img.at(c, y, x) - mean);
            }
        }
        EXPECT_LT(var / 1024.0, 1e-6);
    }
}

}  // namespace
