// Quantization tests: scale search, round-trip error vs bitwidth (property
// sweeps), integer reference kernels vs float kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;
using nn::Tensor;

Tensor random_weights(nn::Shape shape, std::uint64_t seed, float scale = 1.0F) {
    util::Rng rng(seed);
    Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.normal(0.0, scale));
    }
    return t;
}

TEST(Quantize, CodesWithinSignedRange) {
    const Tensor w = random_weights({64}, 1);
    for (int bits = 1; bits <= 8; ++bits) {
        const auto q = nn::quantize_weights(w, bits);
        const int lo = -(1 << (bits - 1));
        const int hi = (1 << (bits - 1)) - 1;
        for (const auto c : q.codes) {
            EXPECT_GE(c, lo);
            EXPECT_LE(c, hi);
        }
    }
}

class QuantizeBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBitSweep, WeightErrorShrinksWithBits) {
    const int bits = GetParam();
    const Tensor w = random_weights({256}, 2);
    const auto q_low = nn::quantize_weights(w, bits);
    const auto q_high = nn::quantize_weights(w, bits + 1);
    // One extra bit should not make the representation worse.
    EXPECT_LE(q_high.mse, q_low.mse * 1.05);
}

TEST_P(QuantizeBitSweep, ActivationErrorShrinksWithBits) {
    const int bits = GetParam();
    Tensor a = random_weights({256}, 3);
    for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = std::fabs(a[i]);
    const auto q_low = nn::quantize_activations(a, bits);
    const auto q_high = nn::quantize_activations(a, bits + 1);
    EXPECT_LE(q_high.mse, q_low.mse * 1.05);
    for (const auto c : q_low.codes) EXPECT_GE(c, 0);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeBitSweep, ::testing::Range(1, 8));

TEST(Quantize, EightBitRelativeErrorIsSmall) {
    const Tensor w = random_weights({512}, 4);
    const auto q = nn::quantize_weights(w, 8);
    double power = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        power += static_cast<double>(w[i]) * w[i];
    }
    power /= static_cast<double>(w.numel());
    EXPECT_LT(q.mse / power, 1e-3);  // SQNR well above 30 dB
}

TEST(Quantize, SearchedScaleBeatsAbsMaxScale) {
    const Tensor w = random_weights({512}, 5);
    for (const int bits : {2, 3, 4}) {
        const double searched = nn::search_weight_scale(w.storage(), bits);
        const double naive =
            static_cast<double>(w.abs_max()) / ((1 << (bits - 1)) - 1);
        auto mse_at = [&](double scale) {
            const double qmax = (1 << (bits - 1)) - 1;
            const double qmin = -(1 << (bits - 1));
            double mse = 0.0;
            for (std::int64_t i = 0; i < w.numel(); ++i) {
                const double q = std::clamp(
                    std::nearbyint(static_cast<double>(w[i]) / scale), qmin, qmax);
                const double err = static_cast<double>(w[i]) - q * scale;
                mse += err * err;
            }
            return mse;
        };
        EXPECT_LE(mse_at(searched), mse_at(naive) * 1.0001) << "bits " << bits;
    }
}

TEST(Quantize, FakeQuantizeIsIdempotent) {
    Tensor w = random_weights({128}, 6);
    nn::fake_quantize_weights(w, 4);
    Tensor once = w;
    nn::fake_quantize_weights(w, 4);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        EXPECT_NEAR(w[i], once[i], 1e-6F);
    }
}

TEST(Quantize, OneBitWeightsUseTwoLevels) {
    Tensor w = random_weights({256}, 7);
    nn::fake_quantize_weights(w, 1);
    std::set<float> levels(w.storage().begin(), w.storage().end());
    EXPECT_LE(levels.size(), 2u);
}

TEST(Quantize, ZeroTensorSurvives) {
    Tensor w = Tensor::zeros({16});
    EXPECT_NO_THROW(nn::fake_quantize_weights(w, 4));
    for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w[i], 0.0F);
    Tensor a = Tensor::zeros({16});
    EXPECT_NO_THROW(nn::fake_quantize_activations(a, 4));
}

TEST(Quantize, ActivationsRejectNegativeInput) {
    Tensor a({2}, {0.5F, -0.5F});
    EXPECT_THROW(nn::quantize_activations(a, 4), imx::util::ContractViolation);
}

class IntKernelBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntKernelBitSweep, IntConvTracksFloatConv) {
    const int bits = GetParam();
    util::Rng rng(8);
    nn::Conv2d conv(3, 4, 3, 1, "c", rng);
    Tensor x = random_weights({3, 6, 6}, 9);
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = std::fabs(x[i]);

    const Tensor y_float = conv.forward(x);
    const Tensor y_int = nn::int_conv2d_reference(x, conv.weight(), conv.bias(),
                                                  1, bits, bits);
    ASSERT_EQ(y_int.shape(), y_float.shape());
    double err = 0.0;
    double mag = 0.0;
    for (std::int64_t i = 0; i < y_float.numel(); ++i) {
        err += std::fabs(static_cast<double>(y_float[i]) - y_int[i]);
        mag += std::fabs(static_cast<double>(y_float[i]));
    }
    // Relative L1 error shrinks with bits; generous per-bit bound.
    const double bound = bits >= 8 ? 0.02 : 1.0 / (1 << (bits - 1));
    EXPECT_LT(err / mag, bound) << "bits " << bits;
}

TEST_P(IntKernelBitSweep, IntLinearTracksFloatLinear) {
    const int bits = GetParam();
    util::Rng rng(10);
    nn::Linear fc(32, 8, "fc", rng);
    Tensor x = random_weights({32}, 11);
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = std::fabs(x[i]);

    const Tensor y_float = fc.forward(x);
    const Tensor y_int =
        nn::int_linear_reference(x, fc.weight(), fc.bias(), bits, bits);
    double err = 0.0;
    double mag = 0.0;
    for (std::int64_t i = 0; i < y_float.numel(); ++i) {
        err += std::fabs(static_cast<double>(y_float[i]) - y_int[i]);
        mag += std::fabs(static_cast<double>(y_float[i]));
    }
    const double bound = bits >= 8 ? 0.02 : 1.0 / (1 << (bits - 1));
    EXPECT_LT(err / mag, bound) << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, IntKernelBitSweep, ::testing::Values(4, 6, 8));

}  // namespace
