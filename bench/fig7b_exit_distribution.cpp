// Reproduces Fig. 7b: the number (and percentage) of processed events
// exiting at each of the three exits, for the learned Q-policy vs the static
// LUT, plus the extra processed events the adaptation buys. Both variants
// run as one parallel sweep through the exp:: engine.
//
// Usage: bench_fig7b_exit_distribution [--quick] [--replicas N] [--threads N]
//                                      [--csv PATH]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    sweep.systems = {{"Q-learning", exp::SystemKind::kOursQLearning,
                      bench::bench_episodes(options, 16), {}, ""},
                     {"static LUT", exp::SystemKind::kOursStatic, 0, {}, ""}};
    sweep.replicas = options.replicas;
    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);
    const std::string prefix = sweep.traces[0].label + "/";

    const auto& learned = bench::canonical_sim(specs, outcomes,
                                               prefix + "Q-learning");
    const auto& lut = bench::canonical_sim(specs, outcomes,
                                           prefix + "static LUT");
    const int n = learned.total_events();

    const auto hist_q = learned.exit_histogram(3);
    const auto hist_lut = lut.exit_histogram(3);

    const double paper_q[3] = {71.0, 2.8, 11.4};
    const double paper_lut[3] = {57.6, 3.8, 15.2};

    util::Table table("Fig. 7b — processed events per exit, measured (paper %)");
    table.header({"exit", "Q-learning", "Q %", "static LUT", "LUT %"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1),
                   std::to_string(hist_q[i]),
                   bench::vs_paper(100.0 * hist_q[i] / n, paper_q[e], 1),
                   std::to_string(hist_lut[i]),
                   bench::vs_paper(100.0 * hist_lut[i] / n, paper_lut[e], 1)});
    }
    table.row({"total processed", std::to_string(learned.processed_count()), "",
               std::to_string(lut.processed_count()), ""});
    table.print(std::cout);

    std::printf(
        "\nQ-learning processes %+.1f%% events vs static LUT (paper: +11.2%%)\n",
        100.0 *
            (learned.processed_count() - lut.processed_count()) /
            static_cast<double>(lut.processed_count()));
    std::printf(
        "exit-1 share of processed events: Q %.1f%% vs LUT %.1f%% — the "
        "learned policy shifts toward the cheap exit (paper Fig. 7b)\n",
        100.0 * hist_q[0] / learned.processed_count(),
        100.0 * hist_lut[0] / lut.processed_count());

    bench::print_replica_aggregate(specs, outcomes,
                                   {"processed", "acc_all_pct", "iepmj"},
                                   options);
    return 0;
}
