// Reproduces Fig. 7b: the number (and percentage) of processed events
// exiting at each of the three exits, for the learned Q-policy vs the static
// LUT. Thin shim over the "fig7b-exit-distribution" registry entry.
//
// Usage: bench_fig7b_exit_distribution [--quick] [--replicas N] [--threads N]
//                                      [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig7b-exit-distribution", argc, argv);
}
