// Shared helpers for the figure-reproduction benches.
//
// The simulation runners are thin wrappers over the exp:: sweep engine's
// scenario functions (replica 0 = the canonical single-run semantics every
// figure has always printed). Benches that compare several systems build a
// exp::PaperSweep instead and fan it out over the thread-pool runner; the
// helpers here cover single-system callers (fig7a, ablations) and the
// common CLI surface (--quick, --replicas, --threads, --csv).
#ifndef IMX_BENCH_COMMON_HPP
#define IMX_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "core/runtime.hpp"
#include "exp/aggregate.hpp"
#include "exp/cli.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace imx::bench {

/// Common bench CLI: [--quick] [--replicas N] [--threads N] [--csv PATH].
using BenchOptions = exp::SweepCli;

inline BenchOptions parse_bench_options(int argc, char** argv) {
    return exp::parse_sweep_cli(argc, argv);
}

/// Canonical setup config, shrunk proportionally in quick mode (same
/// harvest-per-second density as the full run) so smoke runs exercise the
/// full pipeline in seconds.
inline core::SetupConfig bench_setup_config(const BenchOptions& options) {
    core::SetupConfig config;
    if (options.quick) {
        const double quick_duration_s = 4000.0;
        config.total_harvest_mj *= quick_duration_s / config.duration_s;
        config.duration_s = quick_duration_s;
        config.event_count = 150;
    }
    return config;
}

/// Q-learning training episodes for the bench (reduced in quick mode).
inline int bench_episodes(const BenchOptions& options, int full_default) {
    return options.quick ? 4 : full_default;
}

/// Run the sweep, write the optional CSV, and return (specs-parallel)
/// outcomes.
inline std::vector<exp::ScenarioOutcome> run_and_report(
    const std::vector<exp::ScenarioSpec>& specs, const BenchOptions& options) {
    exp::RunnerConfig runner;
    runner.threads = options.threads;
    auto outcomes = exp::run_sweep(specs, runner);
    if (!options.csv.empty()) {
        // A bad path must not lose the sweep results that follow.
        try {
            exp::write_aggregate_csv(options.csv,
                                     exp::aggregate(specs, outcomes));
            std::printf("aggregate CSV written to %s\n", options.csv.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "warning: %s\n", e.what());
        }
    }
    return outcomes;
}

/// The replica-0 simulation result for a scenario group (the canonical run
/// every figure table is built from).
inline const sim::SimResult& canonical_sim(
    const std::vector<exp::ScenarioSpec>& specs,
    const std::vector<exp::ScenarioOutcome>& outcomes,
    const std::string& group) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].group == group && specs[i].replica == 0 &&
            outcomes[i].sim.has_value()) {
            return *outcomes[i].sim;
        }
    }
    std::fprintf(stderr, "no canonical sim result for group %s\n",
                 group.c_str());
    std::abort();
}

/// Run our deployed network under the static LUT policy.
inline sim::SimResult run_ours_static(const core::ExperimentSetup& setup) {
    exp::SystemSpec system{"ours-static", exp::SystemKind::kOursStatic, 0, {}};
    return *exp::run_system_scenario(setup, system, exp::ScenarioContext{})
                .sim;
}

/// Train a Q-learning policy for `episodes` runs, then evaluate greedily on
/// the canonical event schedule. Returns per-episode all-event accuracy in
/// `learning_curve` if non-null.
inline sim::SimResult run_ours_qlearning(const core::ExperimentSetup& setup,
                                         int episodes,
                                         std::vector<double>* learning_curve =
                                             nullptr,
                                         core::RuntimeConfig runtime_cfg = {}) {
    exp::SystemSpec system{"ours-qlearning", exp::SystemKind::kOursQLearning,
                           episodes, runtime_cfg};
    return *exp::run_system_scenario(setup, system, exp::ScenarioContext{},
                                     learning_curve)
                .sim;
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper, int precision = 2) {
    return util::fixed(measured, precision) + " (paper " +
           util::fixed(paper, precision) + ")";
}

}  // namespace imx::bench

#endif  // IMX_BENCH_COMMON_HPP
