// Shared helpers for the figure-reproduction benches: canonical setup,
// simulation runners, and paper-vs-measured table formatting.
#ifndef IMX_BENCH_COMMON_HPP
#define IMX_BENCH_COMMON_HPP

#include <string>
#include <vector>

#include "baselines/baseline_models.hpp"
#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "core/runtime.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace imx::bench {

/// Run our deployed network under the static LUT policy.
inline sim::SimResult run_ours_static(const core::ExperimentSetup& setup) {
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    return simulator.run(setup.events, model, policy);
}

/// Train a Q-learning policy for `episodes` runs, then evaluate greedily on
/// the canonical event schedule. Returns per-episode all-event accuracy in
/// `learning_curve` if non-null.
inline sim::SimResult run_ours_qlearning(const core::ExperimentSetup& setup,
                                         int episodes,
                                         std::vector<double>* learning_curve =
                                             nullptr,
                                         core::RuntimeConfig runtime_cfg = {}) {
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    core::QLearningExitPolicy policy(setup.network.num_exits, runtime_cfg);
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    for (int ep = 0; ep < episodes; ++ep) {
        const auto events = sim::generate_events(
            {static_cast<int>(setup.events.size()), setup.trace.duration(),
             sim::ArrivalKind::kUniform, 2000 + static_cast<std::uint64_t>(ep)});
        const auto r = simulator.run(events, model, policy);
        if (learning_curve != nullptr) {
            learning_curve->push_back(100.0 * r.accuracy_all_events());
        }
    }
    policy.set_eval_mode(true);
    return simulator.run(setup.events, model, policy);
}

/// Run a fixed single-exit baseline on the checkpointed (SONIC-style) runtime.
inline sim::SimResult run_baseline(const core::ExperimentSetup& setup,
                                   baselines::FixedBaselineModel model) {
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.checkpointed_sim);
    return simulator.run(setup.events, model, policy);
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper, int precision = 2) {
    return util::fixed(measured, precision) + " (paper " +
           util::fixed(paper, precision) + ")";
}

}  // namespace imx::bench

#endif  // IMX_BENCH_COMMON_HPP
