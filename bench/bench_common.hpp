// Shared helpers for the figure-reproduction benches.
//
// Every bench builds ScenarioSpecs through the exp:: registry
// (build_paper_scenarios or the make_*_scenario factories), fans them out
// over the thread-pool runner via run_and_report(), and prints its tables
// from the replica-0 ("canonical") outcomes — the single-run semantics every
// figure has always printed. The helpers here cover the common CLI surface
// (--quick, --replicas, --threads, --csv), quick-mode setup shrinking, and
// canonical-outcome lookup; all sweep plumbing lives in src/exp/.
#ifndef IMX_BENCH_COMMON_HPP
#define IMX_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/runtime.hpp"
#include "exp/aggregate.hpp"
#include "exp/cli.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "util/table.hpp"

namespace imx::bench {

/// Common bench CLI: [--quick] [--replicas N] [--threads N] [--csv PATH].
using BenchOptions = exp::SweepCli;

inline BenchOptions parse_bench_options(int argc, char** argv) {
    return exp::parse_sweep_cli(argc, argv);
}

/// Canonical setup config, shrunk proportionally in quick mode (same
/// harvest-per-second density as the full run) so smoke runs exercise the
/// full pipeline in seconds.
inline core::SetupConfig bench_setup_config(const BenchOptions& options) {
    core::SetupConfig config;
    if (options.quick) {
        const double quick_duration_s = 4000.0;
        config.total_harvest_mj *= quick_duration_s / config.duration_s;
        config.duration_s = quick_duration_s;
        config.event_count = 150;
    }
    return config;
}

/// Q-learning training episodes for the bench (reduced in quick mode).
inline int bench_episodes(const BenchOptions& options, int full_default) {
    return options.quick ? 4 : full_default;
}

/// Run the sweep, write the optional CSV, and return (specs-parallel)
/// outcomes.
inline std::vector<exp::ScenarioOutcome> run_and_report(
    const std::vector<exp::ScenarioSpec>& specs, const BenchOptions& options) {
    exp::RunnerConfig runner;
    runner.threads = options.threads;
    auto outcomes = exp::run_sweep(specs, runner);
    if (!options.csv.empty()) {
        // A bad path must not lose the sweep results that follow.
        try {
            exp::write_aggregate_csv(options.csv,
                                     exp::aggregate(specs, outcomes));
            std::printf("aggregate CSV written to %s\n", options.csv.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "warning: %s\n", e.what());
        }
    }
    return outcomes;
}

/// The replica-0 simulation result for a scenario group (the canonical run
/// every figure table is built from).
inline const sim::SimResult& canonical_sim(
    const std::vector<exp::ScenarioSpec>& specs,
    const std::vector<exp::ScenarioOutcome>& outcomes,
    const std::string& group) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].group == group && specs[i].replica == 0 &&
            outcomes[i].sim.has_value()) {
            return *outcomes[i].sim;
        }
    }
    std::fprintf(stderr, "no canonical sim result for group %s\n",
                 group.c_str());
    std::abort();
}

/// The replica-0 metric map for a scenario group (the canonical run for
/// simulation-free scenarios, where there is no SimResult to fetch).
inline const exp::MetricMap& canonical_metrics(
    const std::vector<exp::ScenarioSpec>& specs,
    const std::vector<exp::ScenarioOutcome>& outcomes,
    const std::string& group) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].group == group && specs[i].replica == 0) {
            return outcomes[i].metrics;
        }
    }
    std::fprintf(stderr, "no canonical outcome for group %s\n", group.c_str());
    std::abort();
}

/// Print the "mean ± 95% CI" seed-replica aggregation table over the
/// selected metrics; no-op for single-replica runs (where the canonical
/// tables already tell the whole story).
inline void print_replica_aggregate(
    const std::vector<exp::ScenarioSpec>& specs,
    const std::vector<exp::ScenarioOutcome>& outcomes,
    const std::vector<std::string>& metric_names,
    const BenchOptions& options) {
    if (options.replicas <= 1) return;
    std::cout << '\n';
    exp::aggregate_table(exp::aggregate(specs, outcomes), metric_names,
                         "seed-replica aggregation (mean ± 95% CI, " +
                             std::to_string(options.replicas) + " replicas)")
        .print(std::cout);
}

/// "measured (paper X)" cell.
inline std::string vs_paper(double measured, double paper, int precision = 2) {
    return util::fixed(measured, precision) + " (paper " +
           util::fixed(paper, precision) + ")";
}

}  // namespace imx::bench

#endif  // IMX_BENCH_COMMON_HPP
