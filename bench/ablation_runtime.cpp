// Ablation A1 (DESIGN.md), runtime side: incremental inference on/off,
// miss-penalty sweep (the energy-reservation signal), and storage-capacity
// sensitivity of the Q-learning runtime. All three ablation grids expand to
// ScenarioSpecs (the capacity grid through the exp::storage_patch axis) and
// run as one parallel sweep through the exp:: engine.
//
// Usage: bench_ablation_runtime [--quick] [--replicas N] [--threads N]
//                               [--csv PATH]
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    const auto setup_cfg = bench::bench_setup_config(options);
    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(setup_cfg));
    const exp::TraceSpec trace{"paper-solar", setup_cfg, setup};
    const int eps_full = bench::bench_episodes(options, 16);
    const int eps_capacity = bench::bench_episodes(options, 12);

    // Grid 1: incremental inference (the second Q-table) on/off.
    exp::PaperSweep incremental_sweep;
    incremental_sweep.traces = {trace};
    core::RuntimeConfig no_incremental;
    no_incremental.enable_incremental = false;
    incremental_sweep.systems = {
        {"with incremental (paper)", exp::SystemKind::kOursQLearning,
         eps_full, {}, ""},
        {"without", exp::SystemKind::kOursQLearning, eps_full,
         no_incremental, ""}};
    incremental_sweep.replicas = options.replicas;
    auto specs = exp::build_paper_scenarios(incremental_sweep);

    // Grid 2: miss-penalty (energy-reservation signal) sweep.
    const double penalties[] = {0.0, 0.5, 1.0, 2.0};
    exp::PaperSweep penalty_sweep;
    penalty_sweep.traces = {trace};
    for (const double penalty : penalties) {
        core::RuntimeConfig cfg;
        cfg.miss_penalty = penalty;
        penalty_sweep.systems.push_back(
            {"penalty " + util::fixed(penalty, 1),
             exp::SystemKind::kOursQLearning, eps_full, cfg, ""});
    }
    penalty_sweep.replicas = options.replicas;
    for (auto& spec : exp::build_paper_scenarios(penalty_sweep)) {
        specs.push_back(std::move(spec));
    }

    // Grid 3: storage-capacity axis (QL vs static LUT per capacity).
    const double capacities[] = {1.5, 3.0, 6.0, 12.0};
    exp::PaperSweep capacity_sweep;
    capacity_sweep.traces = {trace};
    capacity_sweep.systems = {
        {"Q-learning", exp::SystemKind::kOursQLearning, eps_capacity, {}, ""},
        {"static LUT", exp::SystemKind::kOursStatic, 0, {}, ""}};
    capacity_sweep.patches.clear();  // only the explicit capacities run
    for (const double capacity : capacities) {
        capacity_sweep.patches.push_back(exp::storage_patch(capacity));
    }
    capacity_sweep.replicas = options.replicas;
    for (auto& spec : exp::build_paper_scenarios(capacity_sweep)) {
        specs.push_back(std::move(spec));
    }

    const auto outcomes = bench::run_and_report(specs, options);

    util::Table t1("Ablation — incremental inference (second Q-table)");
    t1.header({"variant", "IEpmJ", "acc all %", "acc processed %", "processed"});
    for (const char* variant : {"with incremental (paper)", "without"}) {
        const auto& r = bench::canonical_sim(
            specs, outcomes, std::string("paper-solar/") + variant);
        t1.row({variant, util::fixed(r.iepmj(), 3),
                util::fixed(100.0 * r.accuracy_all_events(), 1),
                util::fixed(100.0 * r.accuracy_processed(), 1),
                std::to_string(r.processed_count())});
    }
    t1.print(std::cout);

    util::Table t2("Ablation — miss penalty (energy-reservation signal)");
    t2.header({"miss penalty", "IEpmJ", "acc all %", "exit-1 share %"});
    for (const double penalty : penalties) {
        const auto& r = bench::canonical_sim(
            specs, outcomes, "paper-solar/penalty " + util::fixed(penalty, 1));
        const auto hist = r.exit_histogram(3);
        t2.row({util::fixed(penalty, 1), util::fixed(r.iepmj(), 3),
                util::fixed(100.0 * r.accuracy_all_events(), 1),
                util::fixed(100.0 * hist[0] /
                                std::max(r.processed_count(), 1),
                            1)});
    }
    t2.print(std::cout);

    util::Table t3("Ablation — storage capacity (mJ)");
    t3.header({"capacity", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
    for (const double capacity : capacities) {
        const std::string suffix = "/" + exp::storage_patch(capacity).label;
        const auto& ql = bench::canonical_sim(
            specs, outcomes, "paper-solar/Q-learning" + suffix);
        const auto& lut = bench::canonical_sim(
            specs, outcomes, "paper-solar/static LUT" + suffix);
        t3.row({util::fixed(capacity, 1), util::fixed(ql.iepmj(), 3),
                util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()) + "/" +
                    std::to_string(lut.processed_count())});
    }
    t3.print(std::cout);

    std::printf(
        "\nnotes: the reservation signal (miss penalty) is what teaches the "
        "runtime to favor cheap exits; with penalty 0 the learner chases "
        "per-event accuracy like the static LUT does.\n");

    bench::print_replica_aggregate(specs, outcomes,
                                   {"iepmj", "acc_all_pct", "processed"},
                                   options);
    return 0;
}
