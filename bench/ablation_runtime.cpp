// Ablation A1 (DESIGN.md), runtime side: incremental inference on/off,
// miss-penalty sweep (the energy-reservation signal), and storage-capacity
// sensitivity of the Q-learning runtime. Thin shim over the
// "ablation-runtime" registry entry.
//
// Usage: bench_ablation_runtime [--quick] [--replicas N] [--threads N]
//                               [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("ablation-runtime", argc, argv);
}
