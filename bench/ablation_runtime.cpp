// Ablation A1 (DESIGN.md), runtime side: incremental inference on/off,
// miss-penalty sweep (the energy-reservation signal), and storage-capacity
// sensitivity of the Q-learning runtime.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main() {
    const auto setup = core::make_paper_setup();

    util::Table t1("Ablation — incremental inference (second Q-table)");
    t1.header({"variant", "IEpmJ", "acc all %", "acc processed %", "processed"});
    for (const bool incremental : {true, false}) {
        core::RuntimeConfig cfg;
        cfg.enable_incremental = incremental;
        const auto r = bench::run_ours_qlearning(setup, 16, nullptr, cfg);
        t1.row({incremental ? "with incremental (paper)" : "without",
                util::fixed(r.iepmj(), 3),
                util::fixed(100.0 * r.accuracy_all_events(), 1),
                util::fixed(100.0 * r.accuracy_processed(), 1),
                std::to_string(r.processed_count())});
    }
    t1.print(std::cout);

    util::Table t2("Ablation — miss penalty (energy-reservation signal)");
    t2.header({"miss penalty", "IEpmJ", "acc all %", "exit-1 share %"});
    for (const double penalty : {0.0, 0.5, 1.0, 2.0}) {
        core::RuntimeConfig cfg;
        cfg.miss_penalty = penalty;
        const auto r = bench::run_ours_qlearning(setup, 16, nullptr, cfg);
        const auto hist = r.exit_histogram(3);
        t2.row({util::fixed(penalty, 1), util::fixed(r.iepmj(), 3),
                util::fixed(100.0 * r.accuracy_all_events(), 1),
                util::fixed(100.0 * hist[0] /
                                std::max(r.processed_count(), 1),
                            1)});
    }
    t2.print(std::cout);

    util::Table t3("Ablation — storage capacity (mJ)");
    t3.header({"capacity", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
    for (const double capacity : {1.5, 3.0, 6.0, 12.0}) {
        auto variant = setup;
        variant.multi_exit_sim.storage.capacity_mj = capacity;
        variant.multi_exit_sim.storage.initial_mj =
            std::min(variant.multi_exit_sim.storage.initial_mj, capacity);
        const auto ql = bench::run_ours_qlearning(variant, 12);
        const auto lut = bench::run_ours_static(variant);
        t3.row({util::fixed(capacity, 1), util::fixed(ql.iepmj(), 3),
                util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()) + "/" +
                    std::to_string(lut.processed_count())});
    }
    t3.print(std::cout);

    std::printf(
        "\nnotes: the reservation signal (miss penalty) is what teaches the "
        "runtime to favor cheap exits; with penalty 0 the learner chases "
        "per-event accuracy like the static LUT does.\n");
    return 0;
}
