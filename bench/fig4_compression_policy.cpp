// Reproduces Fig. 4: the layer-wise preserve ratio and weight-bitwidth
// allocation found by the power-trace-aware two-agent DDPG search (with
// local refinement) under the 1.15 MFLOP / 16 KB constraints. Thin shim
// over the "fig4-compression-policy" registry entry.
//
// Usage: bench_fig4_compression_policy [episodes] [--quick] [--replicas N]
//                                      [--threads N] [--csv PATH]
//                                      [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig4-compression-policy", argc, argv);
}
