// Reproduces Fig. 4: the layer-wise preserve ratio and weight-bitwidth
// allocation found by the power-trace-aware two-agent DDPG search (with
// local refinement) under the 1.15 MFLOP / 16 KB constraints.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const int episodes = argc > 1 ? std::atoi(argv[1]) : 300;

    const auto setup = core::make_paper_setup();
    const auto& desc = setup.network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(), true);

    core::SearchConfig cfg;
    cfg.episodes = episodes;
    core::CompressionSearch search(evaluator, cfg);
    const auto result = search.run_ddpg_refined();

    if (!result.found_feasible) {
        std::printf("search found no feasible policy (unexpected)\n");
        return 1;
    }
    const auto& policy = result.best_policy;

    util::Table table(
        "Fig. 4 — layer-wise compression policy at 1.15 MFLOP / 16 KB");
    table.header({"layer", "preserve ratio", "", "w bits", "a bits"});
    for (std::size_t l = 0; l < desc.num_layers(); ++l) {
        table.row({desc.layers[l].name,
                   util::fixed(policy[l].preserve_ratio, 2),
                   util::bar(policy[l].preserve_ratio, 1.0, 20),
                   std::to_string(policy[l].weight_bits),
                   std::to_string(policy[l].activation_bits)});
    }
    table.print(std::cout);

    const auto acc = oracle.exit_accuracy(policy);
    std::printf(
        "\nsearched policy: Racc %.4f | exits %.1f / %.1f / %.1f %% | "
        "%.3fM MACs (target %.2fM) | %.1f KB (target %.1f KB)\n",
        result.best_reward, acc[0], acc[1], acc[2],
        static_cast<double>(compress::total_macs(desc, policy)) / 1e6,
        core::kFlopsTargetMacs / 1e6,
        compress::model_bytes(desc, policy) / 1024.0,
        core::kSizeTargetBytes / 1024.0);

    // Qualitative Fig. 4 shape checks the paper reports in prose.
    double conv_bits = 0.0;
    int conv_count = 0;
    for (std::size_t l = 0; l < desc.num_layers(); ++l) {
        if (desc.layers[l].kind == compress::LayerKind::kConv) {
            conv_bits += policy[l].weight_bits;
            ++conv_count;
        }
    }
    const int fc_b21_bits =
        policy[static_cast<std::size_t>(desc.layer_index("FC-B21"))].weight_bits;
    const int fc_b31_bits =
        policy[static_cast<std::size_t>(desc.layer_index("FC-B31"))].weight_bits;
    std::printf(
        "shape: mean conv weight bits %.1f (paper: 8); large FCs FC-B21=%d, "
        "FC-B31=%d bits (paper: 1)\n",
        conv_bits / conv_count, fc_b21_bits, fc_b31_bits);
    std::printf("search evaluations: %d\n", result.evaluations);
    return 0;
}
