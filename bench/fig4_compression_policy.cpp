// Reproduces Fig. 4: the layer-wise preserve ratio and weight-bitwidth
// allocation found by the power-trace-aware two-agent DDPG search (with
// local refinement) under the 1.15 MFLOP / 16 KB constraints. The search
// runs as a single scenario through the exp:: engine (the degenerate
// one-scenario sweep), with the full SearchResult returned via the outcome
// payload.
//
// Usage: bench_fig4_compression_policy [episodes] [--quick] [--replicas N]
//                                      [--threads N] [--csv PATH]
#include <any>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/search.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    // An explicit positional episode count always wins over --quick.
    const int episodes =
        exp::positional_int(options, 0, options.quick ? 60 : 300);

    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(bench::bench_setup_config(options)));
    const auto& desc = setup->network;

    core::SearchConfig cfg;
    cfg.episodes = episodes;
    std::vector<exp::ScenarioSpec> specs;
    for (int replica = 0; replica < options.replicas; ++replica) {
        specs.push_back(exp::make_search_scenario(
            setup, exp::SearchAlgo::kDdpgRefined, "ddpg-refined", cfg,
            replica));
    }
    const auto outcomes = bench::run_and_report(specs, options);
    // The canonical (replica 0) policy feeds the Fig. 4 tables below.
    const auto result =
        std::any_cast<core::SearchResult>(outcomes.front().payload);

    if (!result.found_feasible) {
        std::printf("search found no feasible policy (unexpected)\n");
        return 1;
    }
    const auto& policy = result.best_policy;

    util::Table table(
        "Fig. 4 — layer-wise compression policy at 1.15 MFLOP / 16 KB");
    table.header({"layer", "preserve ratio", "", "w bits", "a bits"});
    for (std::size_t l = 0; l < desc.num_layers(); ++l) {
        table.row({desc.layers[l].name,
                   util::fixed(policy[l].preserve_ratio, 2),
                   util::bar(policy[l].preserve_ratio, 1.0, 20),
                   std::to_string(policy[l].weight_bits),
                   std::to_string(policy[l].activation_bits)});
    }
    table.print(std::cout);

    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const auto acc = oracle.exit_accuracy(policy);
    std::printf(
        "\nsearched policy: Racc %.4f | exits %.1f / %.1f / %.1f %% | "
        "%.3fM MACs (target %.2fM) | %.1f KB (target %.1f KB)\n",
        result.best_reward, acc[0], acc[1], acc[2],
        static_cast<double>(compress::total_macs(desc, policy)) / 1e6,
        core::kFlopsTargetMacs / 1e6,
        compress::model_bytes(desc, policy) / 1024.0,
        core::kSizeTargetBytes / 1024.0);

    // Qualitative Fig. 4 shape checks the paper reports in prose.
    double conv_bits = 0.0;
    int conv_count = 0;
    for (std::size_t l = 0; l < desc.num_layers(); ++l) {
        if (desc.layers[l].kind == compress::LayerKind::kConv) {
            conv_bits += policy[l].weight_bits;
            ++conv_count;
        }
    }
    const int fc_b21_bits =
        policy[static_cast<std::size_t>(desc.layer_index("FC-B21"))].weight_bits;
    const int fc_b31_bits =
        policy[static_cast<std::size_t>(desc.layer_index("FC-B31"))].weight_bits;
    std::printf(
        "shape: mean conv weight bits %.1f (paper: 8); large FCs FC-B21=%d, "
        "FC-B31=%d bits (paper: 1)\n",
        conv_bits / conv_count, fc_b21_bits, fc_b31_bits);
    std::printf("search evaluations: %d\n", result.evaluations);

    bench::print_replica_aggregate(specs, outcomes,
                                   {"best_racc", "evaluations", "feasible",
                                    "total_macs_m", "model_kb"},
                                   options);
    return 0;
}
