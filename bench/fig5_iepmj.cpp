// Reproduces Fig. 5 and the Sec. V-C accuracy rows: interesting events per
// harvested millijoule (IEpmJ) plus all-event / processed-event accuracy for
// ours vs SonicNet, SpArSeNet, and LeNet-Cifar. Thin shim over the
// "fig5-iepmj" entry of the experiment registry (src/exp/experiments_*.cpp);
// `imx_sweep fig5-iepmj` runs the identical sweep.
//
// Usage: bench_fig5_iepmj [--quick] [--replicas N] [--threads N] [--csv PATH]
//                         [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig5-iepmj", argc, argv);
}
