// Reproduces Fig. 5 and the Sec. V-C accuracy rows: interesting events per
// harvested millijoule (IEpmJ) plus all-event / processed-event accuracy for
// ours vs SonicNet, SpArSeNet, and LeNet-Cifar.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main() {
    const auto setup = core::make_paper_setup();

    const auto ours = bench::run_ours_qlearning(setup, 16);
    const auto sonic = bench::run_baseline(setup, baselines::make_sonic_net());
    const auto sparse = bench::run_baseline(setup, baselines::make_sparse_net());
    const auto lenet = bench::run_baseline(setup, baselines::make_lenet_cifar());

    struct Row {
        const char* name;
        const sim::SimResult* r;
        double paper_iepmj;
        double paper_acc_all;
        double paper_acc_proc;
    };
    const Row rows[] = {
        {"Our Approach", &ours, 0.89, 50.1, 65.4},
        {"SonicNet", &sonic, 0.25, 14.0, 75.4},
        {"SpArSeNet", &sparse, 0.05, 2.6, 82.7},
        {"LeNet-Cifar", &lenet, 0.70, 39.2, 74.7},
    };

    util::Table table("Fig. 5 — IEpmJ and Sec. V-C accuracy, measured (paper)");
    table.header({"system", "IEpmJ", "acc all events %", "acc processed %",
                  "processed/500"});
    for (const Row& row : rows) {
        table.row({row.name,
                   bench::vs_paper(row.r->iepmj(), row.paper_iepmj),
                   bench::vs_paper(100.0 * row.r->accuracy_all_events(),
                                   row.paper_acc_all, 1),
                   bench::vs_paper(100.0 * row.r->accuracy_processed(),
                                   row.paper_acc_proc, 1),
                   std::to_string(row.r->processed_count())});
    }
    table.print(std::cout);

    std::cout << "\nIEpmJ bars:\n";
    for (const Row& row : rows) {
        std::printf("%-12s |%s| %.3f\n", row.name,
                    util::bar(row.r->iepmj(), 1.0, 40).c_str(), row.r->iepmj());
    }

    std::printf(
        "\nimprovement factors (IEpmJ): ours/Sonic %.1fx (paper 3.6x), "
        "ours/SpArSe %.1fx (paper 18.9x), ours/LeNet %.2fx (paper 1.28x)\n",
        ours.iepmj() / sonic.iepmj(), ours.iepmj() / sparse.iepmj(),
        ours.iepmj() / lenet.iepmj());
    std::printf("harvested energy over the run: %.1f mJ across %zu events\n",
                setup.trace.total_energy(), setup.events.size());
    return 0;
}
