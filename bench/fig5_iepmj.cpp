// Reproduces Fig. 5 and the Sec. V-C accuracy rows: interesting events per
// harvested millijoule (IEpmJ) plus all-event / processed-event accuracy for
// ours vs SonicNet, SpArSeNet, and LeNet-Cifar. The four systems run as one
// parallel sweep through the exp:: engine; with --replicas N the bench also
// prints mean ± 95% CI over independent seed replicas.
//
// Usage: bench_fig5_iepmj [--quick] [--replicas N] [--threads N] [--csv PATH]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    sweep.systems = exp::paper_systems(bench::bench_episodes(options, 16));
    sweep.replicas = options.replicas;
    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);
    const std::string prefix = sweep.traces[0].label + "/";

    struct Row {
        const char* name;
        double paper_iepmj;
        double paper_acc_all;
        double paper_acc_proc;
    };
    const Row rows[] = {
        {"Our Approach", 0.89, 50.1, 65.4},
        {"SonicNet", 0.25, 14.0, 75.4},
        {"SpArSeNet", 0.05, 2.6, 82.7},
        {"LeNet-Cifar", 0.70, 39.2, 74.7},
    };

    util::Table table("Fig. 5 — IEpmJ and Sec. V-C accuracy, measured (paper)");
    table.header({"system", "IEpmJ", "acc all events %", "acc processed %",
                  "processed/" + std::to_string(sweep.traces[0].config.event_count)});
    for (const Row& row : rows) {
        const auto& r = bench::canonical_sim(specs, outcomes,
                                             prefix + row.name);
        table.row({row.name,
                   bench::vs_paper(r.iepmj(), row.paper_iepmj),
                   bench::vs_paper(100.0 * r.accuracy_all_events(),
                                   row.paper_acc_all, 1),
                   bench::vs_paper(100.0 * r.accuracy_processed(),
                                   row.paper_acc_proc, 1),
                   std::to_string(r.processed_count())});
    }
    table.print(std::cout);

    std::cout << "\nIEpmJ bars:\n";
    for (const Row& row : rows) {
        const auto& r = bench::canonical_sim(specs, outcomes,
                                             prefix + row.name);
        std::printf("%-12s |%s| %.3f\n", row.name,
                    util::bar(r.iepmj(), 1.0, 40).c_str(), r.iepmj());
    }

    const auto& ours = bench::canonical_sim(specs, outcomes,
                                            prefix + "Our Approach");
    const auto& sonic = bench::canonical_sim(specs, outcomes,
                                             prefix + "SonicNet");
    const auto& sparse = bench::canonical_sim(specs, outcomes,
                                              prefix + "SpArSeNet");
    const auto& lenet = bench::canonical_sim(specs, outcomes,
                                             prefix + "LeNet-Cifar");
    std::printf(
        "\nimprovement factors (IEpmJ): ours/Sonic %.1fx (paper 3.6x), "
        "ours/SpArSe %.1fx (paper 18.9x), ours/LeNet %.2fx (paper 1.28x)\n",
        ours.iepmj() / sonic.iepmj(), ours.iepmj() / sparse.iepmj(),
        ours.iepmj() / lenet.iepmj());
    std::printf("harvested energy over the run: %.1f mJ across %d events\n",
                ours.total_harvested_mj, ours.total_events());

    bench::print_replica_aggregate(
        specs, outcomes,
        {"iepmj", "acc_all_pct", "acc_processed_pct", "processed"}, options);
    return 0;
}
