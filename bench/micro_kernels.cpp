// Microbenchmarks (google-benchmark): NN kernels and quantization, the
// per-inference compute the MCU model abstracts.
#include <benchmark/benchmark.h>

#include "core/multi_exit_spec.hpp"
#include "nn/conv2d.hpp"
#include "nn/exit_graph.hpp"
#include "nn/linear.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

nn::Tensor random_activations(nn::Shape shape, std::uint64_t seed) {
    util::Rng rng(seed);
    nn::Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return t;
}

void BM_Conv2dForward(benchmark::State& state) {
    util::Rng rng(1);
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2d conv(channels, channels, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({channels, 16, 16}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.forward(x));
    }
    state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(16);

void BM_Conv2dBackward(benchmark::State& state) {
    util::Rng rng(3);
    nn::Conv2d conv(8, 8, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({8, 16, 16}, 4);
    const nn::Tensor y = conv.forward(x);
    const nn::Tensor g = random_activations(y.shape(), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.backward(g));
    }
}
BENCHMARK(BM_Conv2dBackward);

void BM_LinearForward(benchmark::State& state) {
    util::Rng rng(6);
    const int features = static_cast<int>(state.range(0));
    nn::Linear fc(features, features, "fc", rng);
    const nn::Tensor x = random_activations({features}, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fc.forward(x));
    }
    state.SetItemsProcessed(state.iterations() * fc.macs(x.shape()));
}
BENCHMARK(BM_LinearForward)->Arg(64)->Arg(256);

void BM_PaperGraphFullForward(benchmark::State& state) {
    util::Rng rng(8);
    nn::ExitGraph graph = core::build_paper_graph(rng);
    const nn::Tensor x = random_activations({3, 32, 32}, 9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph.forward_all(x));
    }
    state.SetItemsProcessed(state.iterations() * graph.total_macs());
}
BENCHMARK(BM_PaperGraphFullForward);

void BM_PaperGraphExit1Only(benchmark::State& state) {
    util::Rng rng(10);
    nn::ExitGraph graph = core::build_paper_graph(rng);
    const nn::Tensor x = random_activations({3, 32, 32}, 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph.forward_to_exit(x, 0));
    }
    state.SetItemsProcessed(state.iterations() * graph.exit_macs(0));
}
BENCHMARK(BM_PaperGraphExit1Only);

void BM_QuantizeWeights(benchmark::State& state) {
    const int bits = static_cast<int>(state.range(0));
    util::Rng rng(12);
    nn::Tensor w({256, 128});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<float>(rng.normal());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::quantize_weights(w, bits));
    }
    state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeWeights)->Arg(1)->Arg(4)->Arg(8);

void BM_IntConvReference(benchmark::State& state) {
    util::Rng rng(13);
    nn::Conv2d conv(8, 8, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({8, 16, 16}, 14);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::int_conv2d_reference(x, conv.weight(), conv.bias(), 1, 8, 8));
    }
}
BENCHMARK(BM_IntConvReference);

}  // namespace

BENCHMARK_MAIN();
