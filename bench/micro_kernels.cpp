// Microbenchmarks (google-benchmark): NN kernels and quantization, the
// per-inference compute the MCU model abstracts.
//
// All layer benches route through the dispatched kernel layer
// (src/nn/kernels/), so items/sec is MACs/sec for the *active* backend.
// Pass `--kernel scalar|avx2` (before any --benchmark_* flag) to pin the
// backend; the default is the IMX_KERNEL / CPU-detection dispatch. A
// per-kernel invocation/MAC counter report prints after the run.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/multi_exit_spec.hpp"
#include "nn/conv2d.hpp"
#include "nn/exit_graph.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/linear.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

nn::Tensor random_activations(nn::Shape shape, std::uint64_t seed) {
    util::Rng rng(seed);
    nn::Tensor t(std::move(shape));
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return t;
}

void BM_Conv2dForward(benchmark::State& state) {
    util::Rng rng(1);
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2d conv(channels, channels, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({channels, 16, 16}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.forward(x));
    }
    state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
    state.SetLabel(std::string("macs/s, kernel=") +
                   to_string(nn::kernels::active_backend()));
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(16);

void BM_Conv2dBackward(benchmark::State& state) {
    util::Rng rng(3);
    nn::Conv2d conv(8, 8, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({8, 16, 16}, 4);
    const nn::Tensor y = conv.forward(x);
    const nn::Tensor g = random_activations(y.shape(), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.backward(g));
    }
    // Backward computes grad_input and grad_weight: ~2x the forward MACs.
    state.SetItemsProcessed(state.iterations() * 2 * conv.macs(x.shape()));
    state.SetLabel(std::string("macs/s, kernel=") +
                   to_string(nn::kernels::active_backend()));
}
BENCHMARK(BM_Conv2dBackward);

void BM_LinearForward(benchmark::State& state) {
    util::Rng rng(6);
    const int features = static_cast<int>(state.range(0));
    nn::Linear fc(features, features, "fc", rng);
    const nn::Tensor x = random_activations({features}, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fc.forward(x));
    }
    state.SetItemsProcessed(state.iterations() * fc.macs(x.shape()));
    state.SetLabel(std::string("macs/s, kernel=") +
                   to_string(nn::kernels::active_backend()));
}
BENCHMARK(BM_LinearForward)->Arg(64)->Arg(256);

void BM_PaperGraphFullForward(benchmark::State& state) {
    util::Rng rng(8);
    nn::ExitGraph graph = core::build_paper_graph(rng);
    const nn::Tensor x = random_activations({3, 32, 32}, 9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph.forward_all(x));
    }
    state.SetItemsProcessed(state.iterations() * graph.total_macs());
    state.SetLabel(std::string("macs/s, kernel=") +
                   to_string(nn::kernels::active_backend()));
}
BENCHMARK(BM_PaperGraphFullForward);

void BM_PaperGraphExit1Only(benchmark::State& state) {
    util::Rng rng(10);
    nn::ExitGraph graph = core::build_paper_graph(rng);
    const nn::Tensor x = random_activations({3, 32, 32}, 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph.forward_to_exit(x, 0));
    }
    state.SetItemsProcessed(state.iterations() * graph.exit_macs(0));
    state.SetLabel(std::string("macs/s, kernel=") +
                   to_string(nn::kernels::active_backend()));
}
BENCHMARK(BM_PaperGraphExit1Only);

void BM_QuantizeWeights(benchmark::State& state) {
    const int bits = static_cast<int>(state.range(0));
    util::Rng rng(12);
    nn::Tensor w({256, 128});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
        w[i] = static_cast<float>(rng.normal());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::quantize_weights(w, bits));
    }
    state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_QuantizeWeights)->Arg(1)->Arg(4)->Arg(8);

void BM_IntConvReference(benchmark::State& state) {
    util::Rng rng(13);
    nn::Conv2d conv(8, 8, 3, 1, "c", rng);
    const nn::Tensor x = random_activations({8, 16, 16}, 14);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::int_conv2d_reference(x, conv.weight(), conv.bias(), 1, 8, 8));
    }
}
BENCHMARK(BM_IntConvReference);

}  // namespace

int main(int argc, char** argv) {
    // Consume --kernel <scalar|avx2> (or --kernel=<...>) before handing the
    // rest to google-benchmark, which rejects flags it does not know.
    std::vector<char*> passthrough;
    passthrough.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            nn::kernels::force_backend(nn::kernels::parse_backend(argv[++i]));
        } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
            nn::kernels::force_backend(nn::kernels::parse_backend(argv[i] + 9));
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
        return 1;
    }
    std::printf("active kernel backend: %s\n",
                to_string(nn::kernels::active_backend()));
    nn::kernels::counters_reset();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::printf("%s",
                nn::kernels::counters_report(nn::kernels::counters_snapshot())
                    .c_str());
    return 0;
}
