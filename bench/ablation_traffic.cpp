// Request-traffic ablation: arrival source (uniform / flash-crowd bursts /
// MMPP / diurnal) x bounded request-queue capacity x queue-aware vs
// queue-blind slack policy under a 60 s deadline. Thin shim over the
// "traffic-ablation" registry entry — the same grid is also expressible as
// a pure spec file, see examples/experiments/traffic_ablation.ini and
// docs/workloads.md.
//
// Usage: bench_ablation_traffic [--quick] [--replicas N] [--threads N]
//                               [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("traffic-ablation", argc, argv);
}
