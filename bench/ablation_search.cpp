// Ablation A1 (DESIGN.md): compression-search algorithm comparison under an
// equal evaluation budget, plus the power-trace-awareness ablation of the
// reward (Eq. 10 weighting vs plain mean exit accuracy).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const int episodes = argc > 1 ? std::atoi(argv[1]) : 240;

    const auto setup = core::make_paper_setup();
    const auto& desc = setup.network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);

    // --- Search algorithm comparison (trace-aware reward) ---
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(), true);
    core::SearchConfig cfg;
    cfg.episodes = episodes;
    core::CompressionSearch search(evaluator, cfg);

    util::Table table("Ablation — search algorithms, equal evaluation budget");
    table.header({"algorithm", "evals", "feasible", "best Racc"});
    auto add = [&](const char* name, const core::SearchResult& r) {
        table.row({name, std::to_string(r.evaluations),
                   r.found_feasible ? "yes" : "no",
                   util::fixed(r.best_reward, 4)});
    };
    add("DDPG (paper)", search.run_ddpg());
    add("DDPG + refine", search.run_ddpg_refined());
    add("random", search.run_random());
    add("annealing", search.run_annealing());
    table.row({"uniform fit", "1", "yes",
               util::fixed(evaluator.score(core::uniform_baseline_policy()).racc,
                           4)});
    table.row({"reference nonuniform", "1", "yes",
               util::fixed(
                   evaluator.score(core::reference_nonuniform_policy()).racc,
                   4)});
    table.print(std::cout);

    // --- Trace-awareness ablation ---
    // Search with the plain mean-accuracy reward, then evaluate BOTH winners
    // under the trace objective: ignoring the power trace picks policies
    // whose expensive exits miss events.
    const core::PolicyEvaluator blind(desc, oracle, trace_eval,
                                      core::paper_constraints(), false);
    core::CompressionSearch blind_search(blind, cfg);
    const auto blind_best = blind_search.run_ddpg_refined();
    const auto aware_best = search.run_ddpg_refined();

    const double blind_under_trace =
        evaluator.score(blind_best.best_policy).racc;
    const double aware_under_trace =
        evaluator.score(aware_best.best_policy).racc;

    util::Table t2("Ablation — power-trace-aware reward (Eq. 10) vs plain mean");
    t2.header({"search reward", "Racc under trace objective"});
    t2.row({"trace-aware (paper)", util::fixed(aware_under_trace, 4)});
    t2.row({"plain mean accuracy", util::fixed(blind_under_trace, 4)});
    t2.print(std::cout);
    std::printf(
        "\ntrace-aware search wins by %+.1f%% on the deployed objective\n",
        100.0 * (aware_under_trace - blind_under_trace) /
            std::max(blind_under_trace, 1e-9));
    return 0;
}
