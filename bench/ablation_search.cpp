// Ablation A1 (DESIGN.md): compression-search algorithm comparison under an
// equal evaluation budget, plus the power-trace-awareness ablation of the
// reward (Eq. 10 weighting vs plain mean exit accuracy). The five searches
// (four algorithms plus the trace-blind DDPG) run as one parallel sweep of
// exp:: search scenarios; the full SearchResults come back via the outcome
// payloads.
//
// Usage: bench_ablation_search [episodes] [--quick] [--replicas N]
//                              [--threads N] [--csv PATH]
#include <any>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    // An explicit positional episode count always wins over --quick.
    const int episodes =
        exp::positional_int(options, 0, options.quick ? 40 : 240);

    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(bench::bench_setup_config(options)));
    core::SearchConfig cfg;
    cfg.episodes = episodes;
    core::SearchConfig blind_cfg = cfg;
    blind_cfg.trace_aware = false;

    const struct {
        exp::SearchAlgo algo;
        const char* label;
        const core::SearchConfig* config;
    } searches[] = {
        {exp::SearchAlgo::kDdpg, "DDPG (paper)", &cfg},
        {exp::SearchAlgo::kDdpgRefined, "DDPG + refine", &cfg},
        {exp::SearchAlgo::kRandom, "random", &cfg},
        {exp::SearchAlgo::kAnnealing, "annealing", &cfg},
        {exp::SearchAlgo::kDdpgRefined, "DDPG + refine (trace-blind)",
         &blind_cfg},
    };
    std::vector<exp::ScenarioSpec> specs;
    for (const auto& search : searches) {
        for (int replica = 0; replica < options.replicas; ++replica) {
            specs.push_back(exp::make_search_scenario(
                setup, search.algo, search.label, *search.config, replica));
        }
    }
    const auto outcomes = bench::run_and_report(specs, options);
    const auto canonical_result = [&](const char* label) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (specs[i].group == std::string("search/") + label &&
                specs[i].replica == 0) {
                return std::any_cast<core::SearchResult>(outcomes[i].payload);
            }
        }
        std::fprintf(stderr, "no search result for %s\n", label);
        std::abort();
    };

    // The deployed evaluation stack (trace-aware reward) for the reference
    // rows and the trace-awareness comparison below.
    const auto& desc = setup->network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup->trace, setup->events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(), true);

    util::Table table("Ablation — search algorithms, equal evaluation budget");
    table.header({"algorithm", "evals", "feasible", "best Racc"});
    for (const char* label :
         {"DDPG (paper)", "DDPG + refine", "random", "annealing"}) {
        const auto r = canonical_result(label);
        table.row({label, std::to_string(r.evaluations),
                   r.found_feasible ? "yes" : "no",
                   util::fixed(r.best_reward, 4)});
    }
    table.row({"uniform fit", "1", "yes",
               util::fixed(evaluator.score(core::uniform_baseline_policy()).racc,
                           4)});
    table.row({"reference nonuniform", "1", "yes",
               util::fixed(
                   evaluator.score(core::reference_nonuniform_policy()).racc,
                   4)});
    table.print(std::cout);

    // --- Trace-awareness ablation ---
    // Search with the plain mean-accuracy reward, then evaluate BOTH winners
    // under the trace objective: ignoring the power trace picks policies
    // whose expensive exits miss events.
    const auto blind_best = canonical_result("DDPG + refine (trace-blind)");
    const auto aware_best = canonical_result("DDPG + refine");

    const double blind_under_trace =
        evaluator.score(blind_best.best_policy).racc;
    const double aware_under_trace =
        evaluator.score(aware_best.best_policy).racc;

    util::Table t2("Ablation — power-trace-aware reward (Eq. 10) vs plain mean");
    t2.header({"search reward", "Racc under trace objective"});
    t2.row({"trace-aware (paper)", util::fixed(aware_under_trace, 4)});
    t2.row({"plain mean accuracy", util::fixed(blind_under_trace, 4)});
    t2.print(std::cout);
    std::printf(
        "\ntrace-aware search wins by %+.1f%% on the deployed objective\n",
        100.0 * (aware_under_trace - blind_under_trace) /
            std::max(blind_under_trace, 1e-9));

    bench::print_replica_aggregate(specs, outcomes,
                                   {"best_racc", "evaluations", "feasible"},
                                   options);
    return 0;
}
