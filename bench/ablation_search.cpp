// Ablation A1 (DESIGN.md): compression-search algorithm comparison under an
// equal evaluation budget, plus the power-trace-awareness ablation of the
// reward (Eq. 10 weighting vs plain mean exit accuracy). Thin shim over the
// "ablation-search" registry entry.
//
// Usage: bench_ablation_search [episodes] [--quick] [--replicas N]
//                              [--threads N] [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("ablation-search", argc, argv);
}
