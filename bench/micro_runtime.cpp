// Microbenchmarks (google-benchmark) for the runtime path: the Q-learning
// step the paper calls "negligible overhead", DDPG training steps, policy
// evaluation inside the search, and full trace simulations.
#include <benchmark/benchmark.h>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"
#include "rl/ddpg.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace imx;

void BM_QLearningSelectAndUpdate(benchmark::State& state) {
    // The paper's claim: runtime selection is a LUT lookup plus an update.
    sim::QLearningExitPolicy policy(3, sim::RuntimeConfig{});
    const auto setup_once = [] {
        sim::EnergyState s;
        s.level_mj = 2.0;
        s.capacity_mj = 5.0;
        s.charge_rate_mw = 0.02;
        return s;
    };
    const sim::EnergyState s = setup_once();
    const auto desc = core::make_paper_network_desc();
    core::OracleInferenceModel model(desc, core::reference_nonuniform_policy(),
                                     {60.0, 68.0, 70.0});
    for (auto _ : state) {
        const int e = policy.select_exit(s, model);
        policy.observe(s, e, true, true);
        benchmark::DoNotOptimize(e);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QLearningSelectAndUpdate);

void BM_OracleEvaluate(benchmark::State& state) {
    const auto desc = core::make_paper_network_desc();
    core::OracleInferenceModel model(desc, core::reference_nonuniform_policy(),
                                     {60.0, 68.0, 70.0});
    int ev = 0;
    for (auto _ : state) {
        const int event_id = ev % 500;
        const int exit = ev % 3;
        ++ev;
        benchmark::DoNotOptimize(model.evaluate(event_id, exit));
    }
}
BENCHMARK(BM_OracleEvaluate);

void BM_PolicyEvaluatorScore(benchmark::State& state) {
    // One reward evaluation of the compression search (Eq. 4-10).
    static const auto setup = core::make_paper_setup();
    static const core::AccuracyModel oracle(
        setup.network, {core::kPaperFullPrecisionAcc.begin(),
                        core::kPaperFullPrecisionAcc.end()});
    static const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(setup.network, oracle, trace_eval,
                                          core::paper_constraints(), true);
    const auto policy = core::reference_nonuniform_policy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.score(policy));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyEvaluatorScore);

void BM_DdpgTrainStep(benchmark::State& state) {
    rl::DdpgConfig cfg;
    cfg.state_dim = 12;
    cfg.action_dim = 1;
    cfg.batch_size = 64;
    rl::DdpgAgent agent(cfg);
    util::Rng rng(1);
    for (int i = 0; i < 256; ++i) {
        std::vector<float> s(12);
        for (auto& v : s) v = static_cast<float>(rng.uniform());
        agent.remember({s, {static_cast<float>(rng.uniform())},
                        static_cast<float>(rng.uniform(-1.0, 1.0)), s, true});
    }
    for (auto _ : state) {
        agent.train_step();
    }
}
BENCHMARK(BM_DdpgTrainStep);

void BM_FullTraceSimulation(benchmark::State& state) {
    // One 13,000-step, 500-event intermittent simulation.
    static const auto setup = core::make_paper_setup();
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::GreedyAffordablePolicy policy;
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.run(setup.events, model, policy));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(setup.events.size()));
}
BENCHMARK(BM_FullTraceSimulation);

}  // namespace

BENCHMARK_MAIN();
