// Reproduces the Sec. V-D latency comparison: per-event latency (arrival to
// result, in 1-second time units) and per-inference latency for ours vs the
// three baselines, with the paper's reported values side by side.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main() {
    const auto setup = core::make_paper_setup();

    const auto ours = bench::run_ours_qlearning(setup, 16);
    const auto sonic = bench::run_baseline(setup, baselines::make_sonic_net());
    const auto sparse = bench::run_baseline(setup, baselines::make_sparse_net());
    const auto lenet = bench::run_baseline(setup, baselines::make_lenet_cifar());

    struct Row {
        const char* name;
        const sim::SimResult* r;
        double paper_event_latency;
    };
    const Row rows[] = {
        {"Our Approach", &ours, 18.0},
        {"SonicNet", &sonic, 139.9},
        {"SpArSeNet", &sparse, 183.4},
        {"LeNet-Cifar", &lenet, 56.7},
    };

    util::Table table("Sec. V-D — latency (time units of 1 s), measured (paper)");
    table.header({"system", "per-event latency", "per-inference latency",
                  "mean MACs/inference (M)"});
    for (const Row& row : rows) {
        table.row({row.name,
                   bench::vs_paper(row.r->mean_event_latency_s(),
                                   row.paper_event_latency, 1),
                   util::fixed(row.r->mean_inference_latency_s(), 1),
                   util::fixed(row.r->mean_inference_macs() / 1e6, 3)});
    }
    table.print(std::cout);

    std::printf(
        "\nper-event latency improvement: vs SonicNet %.1fx (paper 7.8x), "
        "vs SpArSeNet %.1fx (paper 10.2x), vs LeNet-Cifar %.2fx (paper 3.15x)\n",
        sonic.mean_event_latency_s() / ours.mean_event_latency_s(),
        sparse.mean_event_latency_s() / ours.mean_event_latency_s(),
        lenet.mean_event_latency_s() / ours.mean_event_latency_s());
    std::printf(
        "note: SpArSeNet's absolute latency exceeds the paper's 183.4 in this "
        "calibration (its 17.1 mJ inferences only complete near solar noon); "
        "the ordering and all other factors match. See EXPERIMENTS.md.\n");
    return 0;
}
