// Reproduces the Sec. V-D latency comparison: per-event latency (arrival to
// result, in 1-second time units) and per-inference latency for ours vs the
// three baselines. Thin shim over the "latency-table" registry entry.
//
// Usage: bench_latency_table [--quick] [--replicas N] [--threads N]
//                            [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("latency-table", argc, argv);
}
