// Reproduces the Sec. V-D latency comparison: per-event latency (arrival to
// result, in 1-second time units) and per-inference latency for ours vs the
// three baselines, with the paper's reported values side by side. All four
// systems run as one parallel sweep through the exp:: engine.
//
// Usage: bench_latency_table [--quick] [--replicas N] [--threads N]
//                            [--csv PATH]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    sweep.systems = exp::paper_systems(bench::bench_episodes(options, 16));
    sweep.replicas = options.replicas;
    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);
    const std::string prefix = sweep.traces[0].label + "/";

    struct Row {
        const char* name;
        double paper_event_latency;
    };
    const Row rows[] = {
        {"Our Approach", 18.0},
        {"SonicNet", 139.9},
        {"SpArSeNet", 183.4},
        {"LeNet-Cifar", 56.7},
    };

    util::Table table("Sec. V-D — latency (time units of 1 s), measured (paper)");
    table.header({"system", "per-event latency", "per-inference latency",
                  "mean MACs/inference (M)"});
    for (const Row& row : rows) {
        const auto& r = bench::canonical_sim(specs, outcomes,
                                             prefix + row.name);
        table.row({row.name,
                   bench::vs_paper(r.mean_event_latency_s(),
                                   row.paper_event_latency, 1),
                   util::fixed(r.mean_inference_latency_s(), 1),
                   util::fixed(r.mean_inference_macs() / 1e6, 3)});
    }
    table.print(std::cout);

    const auto& ours = bench::canonical_sim(specs, outcomes,
                                            prefix + "Our Approach");
    const auto& sonic = bench::canonical_sim(specs, outcomes,
                                             prefix + "SonicNet");
    const auto& sparse = bench::canonical_sim(specs, outcomes,
                                              prefix + "SpArSeNet");
    const auto& lenet = bench::canonical_sim(specs, outcomes,
                                             prefix + "LeNet-Cifar");
    std::printf(
        "\nper-event latency improvement: vs SonicNet %.1fx (paper 7.8x), "
        "vs SpArSeNet %.1fx (paper 10.2x), vs LeNet-Cifar %.2fx (paper 3.15x)\n",
        sonic.mean_event_latency_s() / ours.mean_event_latency_s(),
        sparse.mean_event_latency_s() / ours.mean_event_latency_s(),
        lenet.mean_event_latency_s() / ours.mean_event_latency_s());
    std::printf(
        "note: SpArSeNet's absolute latency exceeds the paper's 183.4 in this "
        "calibration (its 17.1 mJ inferences only complete near solar noon); "
        "the ordering and all other factors match. See EXPERIMENTS.md.\n");

    bench::print_replica_aggregate(
        specs, outcomes,
        {"event_latency_s", "inference_latency_s", "inference_macs_m"},
        options);
    return 0;
}
