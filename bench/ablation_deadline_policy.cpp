// Deadline x exit-policy ablation: how each registry policy (greedy /
// slack-greedy / qlearning / slack-qlearning by default) trades deadline
// misses against accuracy as the completion deadline tightens. Thin shim
// over the "ablation-deadline-policy" registry entry.
//
// Usage: bench_ablation_deadline_policy [policy,policy,...]
//                                       [--quick] [--replicas N]
//                                       [--threads N] [--csv PATH]
//                                       [--base-seed N]
// The optional positional argument is a comma-separated list of registry
// policy names (default: every built-in; see docs/policies.md).
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("ablation-deadline-policy", argc, argv);
}
