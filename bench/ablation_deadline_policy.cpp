// Deadline x exit-policy ablation: how each registry policy (greedy /
// slack-greedy / qlearning / slack-qlearning by default) trades deadline
// misses against accuracy as the completion deadline tightens. The
// slack-aware variants read EnergyState::deadline_slack_s — the greedy LUT
// through its slack-to-depth schedule, the Q runtime through the slack bin
// in its state plus the deadline-miss reward penalty — so they shed exit
// depth when the deadline bites. The closing summary compares each
// slack-aware policy against its slack-blind counterpart per deadline cell.
//
// Usage: bench_ablation_deadline_policy [policy,policy,...]
//                                       [--quick] [--replicas N]
//                                       [--threads N] [--csv PATH]
// The optional positional argument is a comma-separated list of registry
// policy names (default: every built-in; see docs/policies.md).
#include <cstdio>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/policies/registry.hpp"

using namespace imx;

namespace {

std::vector<std::string> parse_policy_list(const bench::BenchOptions& options) {
    if (options.positional.empty()) return sim::policy_names();
    if (options.positional.size() > 1) {
        std::fprintf(stderr, "error: unexpected argument '%s'\n",
                     options.positional[1].c_str());
        std::exit(2);
    }
    std::vector<std::string> names;
    const std::string& list = options.positional[0];
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) names.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        // A duplicate would register two identical grid cells under one
        // group label and silently skew the aggregation's replica counts.
        for (std::size_t j = 0; j < i; ++j) {
            if (names[i] == names[j]) {
                std::fprintf(stderr, "error: duplicate policy '%s'\n",
                             names[i].c_str());
                std::exit(2);
            }
        }
        const std::string& name = names[i];
        if (!sim::has_policy(name)) {
            // Reuse the registry's own diagnostic (it lists every
            // registered name) instead of duplicating the format here.
            try {
                (void)sim::make_policy(name);
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
            }
            std::exit(2);
        }
    }
    if (names.empty()) {
        std::fprintf(stderr, "error: empty policy list\n");
        std::exit(2);
    }
    return names;
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    const auto policies = parse_policy_list(options);

    const std::vector<double> deadlines = {
        30.0, 60.0, 120.0, 240.0, std::numeric_limits<double>::infinity()};

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    sweep.systems = {{"ours", exp::SystemKind::kOursPolicy,
                      bench::bench_episodes(options, 12), {}, ""}};
    std::vector<exp::SimPatch> deadline_axis;
    for (const double d : deadlines) {
        deadline_axis.push_back(exp::deadline_patch(d));
    }
    std::vector<exp::SimPatch> policy_axis;
    for (const auto& name : policies) {
        policy_axis.push_back(exp::policy_patch(name));
    }
    sweep.patches = exp::cross_patches(deadline_axis, policy_axis);
    sweep.replicas = options.replicas;

    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);

    exp::aggregate_table(
        exp::aggregate(specs, outcomes),
        {"deadline_miss_pct", "acc_all_pct", "iepmj", "processed",
         "event_latency_s"},
        "Deadline x policy ablation (" + std::to_string(options.replicas) +
            " replica(s); mean ± 95% CI when > 1)")
        .print(std::cout);

    // Canonical (replica-0) slack-aware vs slack-blind comparison per
    // finite-deadline cell: the pairs share everything but slack awareness.
    const auto group_for = [&](const std::string& policy,
                               const exp::SimPatch& ddl) {
        return "paper-solar/ours/" + ddl.label + "+pol-" + policy;
    };
    const auto have = [&](const std::string& name) {
        for (const auto& p : policies) {
            if (p == name) return true;
        }
        return false;
    };
    const struct {
        const char* blind;
        const char* aware;
    } pairs[] = {{"greedy", "slack-greedy"}, {"qlearning", "slack-qlearning"}};
    std::printf("\nslack-aware vs slack-blind, canonical run:\n");
    for (const auto& pair : pairs) {
        if (!have(pair.blind) || !have(pair.aware)) continue;
        for (const auto& ddl : deadline_axis) {
            if (ddl.label == "ddl-none") continue;
            const auto& blind = bench::canonical_metrics(
                specs, outcomes, group_for(pair.blind, ddl));
            const auto& aware = bench::canonical_metrics(
                specs, outcomes, group_for(pair.aware, ddl));
            const double blind_miss = blind.at("deadline_miss_pct");
            const double aware_miss = aware.at("deadline_miss_pct");
            std::printf(
                "  %-8s %-15s -> %-15s miss %6.1f%% -> %6.1f%%  "
                "acc(all) %5.1f%% -> %5.1f%%  %s\n",
                ddl.label.c_str(), pair.blind, pair.aware, blind_miss,
                aware_miss, blind.at("acc_all_pct"), aware.at("acc_all_pct"),
                aware_miss < blind_miss   ? "(miss rate down)"
                : aware_miss > blind_miss ? "(miss rate up)"
                                          : "(tied)");
        }
    }

    std::printf(
        "\nnotes: with no deadline (ddl-none) the slack-aware policies "
        "collapse onto their slack-blind counterparts (infinite slack caps "
        "nothing). Under tight deadlines they commit to shallower exits, "
        "which finishes sooner, spends less per event, and frees the device "
        "for the next arrival — fewer deadline misses at some accuracy "
        "cost.\n");
    return 0;
}
