// Reproduces Fig. 6: per-exit FLOPs before/after nonuniform compression
// (with the reduction ratio annotations), the baselines' FLOPs, and the
// per-inference average under the learned runtime. Thin shim over the
// "fig6-flops" registry entry.
//
// Usage: bench_fig6_flops [--quick] [--replicas N] [--threads N] [--csv PATH]
//                         [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig6-flops", argc, argv);
}
