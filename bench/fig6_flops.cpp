// Reproduces Fig. 6: per-exit FLOPs before/after nonuniform compression
// (with the reduction ratio annotations) and the baselines' FLOPs, plus the
// per-inference average comparison the paper derives from it. The learned
// runtime runs through the exp:: sweep engine (a single-system sweep, so
// --replicas N turns the "Aver." bar into a mean over seed replicas).
//
// Usage: bench_fig6_flops [--quick] [--replicas N] [--threads N] [--csv PATH]
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);
    // Built once, shared with the sweep below via TraceSpec::prebuilt.
    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(bench::bench_setup_config(options)));
    const auto& desc = setup->network;
    const auto full = compress::Policy::full_precision(desc.num_layers());
    const auto before = compress::per_exit_macs(desc, full);
    const auto after = compress::per_exit_macs(desc, setup->deployed_policy);

    const double paper_ratio[3] = {0.67, 0.44, 0.31};

    util::Table table("Fig. 6 — per-exit FLOPs before/after compression");
    table.header({"exit", "before (MFLOPs)", "after (MFLOPs)",
                  "ratio, measured (paper)"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        const double ratio = static_cast<double>(after[i]) /
                             static_cast<double>(before[i]);
        table.row({"exit " + std::to_string(e + 1),
                   util::fixed(static_cast<double>(before[i]) / 1e6, 4),
                   util::fixed(static_cast<double>(after[i]) / 1e6, 4),
                   bench::vs_paper(ratio, paper_ratio[e])});
    }
    table.row({"SonicNet", "2.0000", "-", "-"});
    table.row({"SpArSeNet", "11.4000", "-", "-"});
    table.row({"LeNet-Cifar", "0.7200", "-", "-"});
    table.print(std::cout);

    // Per-inference FLOPs average under the learned runtime (the paper's
    // "Aver." bar and the 4.1x / 23.2x / 0.46x annotations), via the engine.
    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", {}, setup}};
    sweep.systems = {{"Our Approach", exp::SystemKind::kOursQLearning,
                      bench::bench_episodes(options, 16), {}, ""}};
    sweep.replicas = options.replicas;
    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);
    const auto groups = exp::aggregate(specs, outcomes);
    const double avg_macs =
        groups.front().metrics.at("inference_macs_m").mean * 1e6;
    std::printf(
        "\nmean per-inference FLOPs (ours, learned runtime): %.3fM\n",
        avg_macs / 1e6);
    std::printf(
        "per-inference improvement: vs SonicNet %.1fx (paper 4.1x), "
        "vs SpArSeNet %.1fx (paper 23.2x), vs LeNet-Cifar %.2fx (paper 0.46x"
        " — i.e. LeNet-Cifar is cheaper per inference)\n",
        2.0e6 / avg_macs, 11.4e6 / avg_macs, 0.72e6 / avg_macs);

    std::cout << "\nFLOPs bars (MFLOPs, 0..2):\n";
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        std::printf("exit %d before |%s| %.3f\n", e + 1,
                    util::bar(static_cast<double>(before[i]) / 1e6, 2.0, 40).c_str(),
                    static_cast<double>(before[i]) / 1e6);
        std::printf("exit %d after  |%s| %.3f\n", e + 1,
                    util::bar(static_cast<double>(after[i]) / 1e6, 2.0, 40).c_str(),
                    static_cast<double>(after[i]) / 1e6);
    }
    return 0;
}
