// Design-space sweep over the two newest scenario axes: energy-storage
// capacity x inference deadline, for the learned runtime vs the static LUT.
// The cross product registers through exp::cross_patches, so one PaperSweep
// covers the whole trace x system x storage x deadline grid; the aggregate
// table and CSV include the deadline-miss-rate column next to the paper's
// forward-progress metrics. (Related work motivates both axes: harvested-
// energy regimes in Gobieski et al., energy/deadline constraints in Bullo
// et al.)
//
// Usage: bench_ablation_storage_deadline [--quick] [--replicas N]
//                                        [--threads N] [--csv PATH]
#include <cstdio>
#include <iostream>
#include <limits>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    sweep.systems = {{"Q-learning", exp::SystemKind::kOursQLearning,
                      bench::bench_episodes(options, 12), {}},
                     {"static LUT", exp::SystemKind::kOursStatic, 0, {}}};
    const std::vector<exp::SimPatch> storage_axis = {
        exp::storage_patch(3.0), exp::storage_patch(6.0),
        exp::storage_patch(12.0)};
    const std::vector<exp::SimPatch> deadline_axis = {
        exp::deadline_patch(60.0), exp::deadline_patch(240.0),
        exp::deadline_patch(std::numeric_limits<double>::infinity())};
    sweep.patches = exp::cross_patches(storage_axis, deadline_axis);
    sweep.replicas = options.replicas;

    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);

    exp::aggregate_table(
        exp::aggregate(specs, outcomes),
        {"iepmj", "processed", "deadline_miss_pct", "acc_all_pct",
         "event_latency_s"},
        "Storage x deadline sweep (" + std::to_string(options.replicas) +
            " replica(s); mean ± 95% CI when > 1)")
        .print(std::cout);

    std::printf(
        "\nnotes: a tight deadline turns slow waiting into explicit misses "
        "(deadline_miss_pct) but frees the device for the next arrival; "
        "larger storage buffers more night/cloud energy, which lifts "
        "processed counts until capacity stops binding. Groups are "
        "trace/system/capXmJ+ddlYs; use --csv for the full per-cell "
        "statistics.\n");
    return 0;
}
