// Design-space sweep over three scenario axes: energy-storage capacity x
// inference deadline x exit policy (every sim::policies registry built-in).
// Thin shim over the "ablation-storage-deadline" registry entry — the same
// grid is also expressible as a pure spec file, see
// examples/experiments/storage_deadline_policy.ini.
//
// Usage: bench_ablation_storage_deadline [--quick] [--replicas N]
//                                        [--threads N] [--csv PATH]
//                                        [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("ablation-storage-deadline", argc, argv);
}
