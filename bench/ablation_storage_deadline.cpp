// Design-space sweep over three scenario axes: energy-storage capacity x
// inference deadline x exit policy (every sim::policies registry built-in).
// The full factorial registers through exp::cross_patches, so one PaperSweep
// covers the whole trace x storage x deadline x policy grid; the aggregate
// table and CSV include the deadline-miss-rate column next to the paper's
// forward-progress metrics. The pol-greedy / pol-qlearning slices reproduce
// the bench's historical static-LUT / Q-learning cells bitwise at replica 0
// (pinned by tests/test_policies.cpp). (Related work motivates the axes:
// harvested-energy regimes in Gobieski et al., energy/deadline constraints
// in Bullo et al.)
//
// Usage: bench_ablation_storage_deadline [--quick] [--replicas N]
//                                        [--threads N] [--csv PATH]
#include <cstdio>
#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "sim/policies/registry.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    exp::PaperSweep sweep;
    sweep.traces = {{"paper-solar", bench::bench_setup_config(options)}};
    // One multi-exit system; the policy axis below picks the exit policy
    // per cell (train_episodes only applies to the learning policies).
    sweep.systems = {{"ours", exp::SystemKind::kOursPolicy,
                      bench::bench_episodes(options, 12), {}, ""}};
    const std::vector<exp::SimPatch> storage_axis = {
        exp::storage_patch(3.0), exp::storage_patch(6.0),
        exp::storage_patch(12.0)};
    const std::vector<exp::SimPatch> deadline_axis = {
        exp::deadline_patch(60.0), exp::deadline_patch(240.0),
        exp::deadline_patch(std::numeric_limits<double>::infinity())};
    std::vector<exp::SimPatch> policy_axis;
    for (const auto& name : sim::policy_names()) {
        policy_axis.push_back(exp::policy_patch(name));
    }
    sweep.patches = exp::cross_patches(
        exp::cross_patches(storage_axis, deadline_axis), policy_axis);
    sweep.replicas = options.replicas;

    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = bench::run_and_report(specs, options);

    exp::aggregate_table(
        exp::aggregate(specs, outcomes),
        {"iepmj", "processed", "deadline_miss_pct", "acc_all_pct",
         "event_latency_s"},
        "Storage x deadline x policy sweep (" +
            std::to_string(options.replicas) +
            " replica(s); mean ± 95% CI when > 1)")
        .print(std::cout);

    std::printf(
        "\nnotes: a tight deadline turns slow waiting into explicit misses "
        "(deadline_miss_pct) but frees the device for the next arrival; "
        "larger storage buffers more night/cloud energy, which lifts "
        "processed counts until capacity stops binding; the slack-aware "
        "policies (pol-slack-*) trade exit depth for timeliness when the "
        "deadline bites. Groups are trace/ours/capXmJ+ddlYs+pol-NAME; use "
        "--csv for the full per-cell statistics.\n");
    return 0;
}
