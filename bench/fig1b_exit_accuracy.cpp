// Reproduces Fig. 1b: per-exit accuracy of the multi-exit LeNet under
// full precision, uniform compression, and nonuniform compression (the
// deployed reference policy), against the paper's reported bars.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "compress/fit.hpp"

using namespace imx;

int main() {
    const auto desc = core::make_paper_network_desc();
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});

    const auto full = compress::Policy::full_precision(desc.num_layers());
    const auto uniform = core::uniform_baseline_policy();
    const auto nonuniform = core::reference_nonuniform_policy();

    const auto acc_full = oracle.exit_accuracy(full);
    const auto acc_uni = oracle.exit_accuracy(uniform);
    const auto acc_non = oracle.exit_accuracy(nonuniform);

    util::Table table(
        "Fig. 1b — per-exit accuracy (%), measured (paper)");
    table.header({"exit", "full precision", "uniform", "nonuniform"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1),
                   bench::vs_paper(acc_full[i], core::kPaperFullPrecisionAcc[i], 1),
                   bench::vs_paper(acc_uni[i], core::kPaperUniformAcc[i], 1),
                   bench::vs_paper(acc_non[i], core::kPaperNonuniformAcc[i], 1)});
    }
    table.print(std::cout);

    std::cout << "\nbars (55..75 %):\n";
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        auto bar_of = [](double v) { return util::bar(v - 55.0, 20.0, 36); };
        std::printf("exit %d full    |%s| %.1f\n", e + 1,
                    bar_of(acc_full[i]).c_str(), acc_full[i]);
        std::printf("exit %d uniform |%s| %.1f\n", e + 1,
                    bar_of(acc_uni[i]).c_str(), acc_uni[i]);
        std::printf("exit %d nonunif |%s| %.1f\n\n", e + 1,
                    bar_of(acc_non[i]).c_str(), acc_non[i]);
    }

    std::printf("constraints: FLOPs %.3fM (uniform) / %.3fM (nonuniform) "
                "<= %.2fM target; size %.1f / %.1f <= %.1f KB target\n",
                static_cast<double>(compress::total_macs(desc, uniform)) / 1e6,
                static_cast<double>(compress::total_macs(desc, nonuniform)) / 1e6,
                core::kFlopsTargetMacs / 1e6,
                compress::model_bytes(desc, uniform) / 1024.0,
                compress::model_bytes(desc, nonuniform) / 1024.0,
                core::kSizeTargetBytes / 1024.0);
    return 0;
}
