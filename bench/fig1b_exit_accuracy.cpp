// Reproduces Fig. 1b: per-exit accuracy of the multi-exit LeNet under
// full precision, uniform compression, and nonuniform compression (the
// deployed reference policy), against the paper's reported bars. The three
// variants run as one sweep of exit-accuracy scenarios through the exp::
// engine; the computation is RNG-free, so replicas exist only for CSV
// symmetry with the other benches and --quick changes nothing.
//
// Usage: bench_fig1b_exit_accuracy [--quick] [--replicas N] [--threads N]
//                                  [--csv PATH]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "compress/fit.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    struct Variant {
        exp::CompressionVariant kind;
        const char* label;
    };
    const Variant variants[] = {
        {exp::CompressionVariant::kFullPrecision, "full-precision"},
        {exp::CompressionVariant::kUniform, "uniform"},
        {exp::CompressionVariant::kNonuniform, "nonuniform"},
    };
    std::vector<exp::ScenarioSpec> specs;
    for (const auto& variant : variants) {
        for (int replica = 0; replica < options.replicas; ++replica) {
            specs.push_back(exp::make_exit_accuracy_scenario(
                variant.kind, variant.label, replica));
        }
    }
    const auto outcomes = bench::run_and_report(specs, options);

    const auto& full =
        bench::canonical_metrics(specs, outcomes, "fig1b/full-precision");
    const auto& uni = bench::canonical_metrics(specs, outcomes,
                                               "fig1b/uniform");
    const auto& non = bench::canonical_metrics(specs, outcomes,
                                               "fig1b/nonuniform");
    const auto exit_acc = [](const exp::MetricMap& m, int e) {
        return m.at("exit" + std::to_string(e + 1) + "_acc_pct");
    };

    util::Table table(
        "Fig. 1b — per-exit accuracy (%), measured (paper)");
    table.header({"exit", "full precision", "uniform", "nonuniform"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1),
                   bench::vs_paper(exit_acc(full, e),
                                   core::kPaperFullPrecisionAcc[i], 1),
                   bench::vs_paper(exit_acc(uni, e), core::kPaperUniformAcc[i],
                                   1),
                   bench::vs_paper(exit_acc(non, e),
                                   core::kPaperNonuniformAcc[i], 1)});
    }
    table.print(std::cout);

    std::cout << "\nbars (55..75 %):\n";
    for (int e = 0; e < 3; ++e) {
        auto bar_of = [](double v) { return util::bar(v - 55.0, 20.0, 36); };
        std::printf("exit %d full    |%s| %.1f\n", e + 1,
                    bar_of(exit_acc(full, e)).c_str(), exit_acc(full, e));
        std::printf("exit %d uniform |%s| %.1f\n", e + 1,
                    bar_of(exit_acc(uni, e)).c_str(), exit_acc(uni, e));
        std::printf("exit %d nonunif |%s| %.1f\n\n", e + 1,
                    bar_of(exit_acc(non, e)).c_str(), exit_acc(non, e));
    }

    std::printf("constraints: FLOPs %.3fM (uniform) / %.3fM (nonuniform) "
                "<= %.2fM target; size %.1f / %.1f <= %.1f KB target\n",
                uni.at("total_macs_m"), non.at("total_macs_m"),
                core::kFlopsTargetMacs / 1e6, uni.at("model_kb"),
                non.at("model_kb"), core::kSizeTargetBytes / 1024.0);
    return 0;
}
