// Reproduces Fig. 1b: per-exit accuracy of the multi-exit LeNet under
// full precision, uniform compression, and nonuniform compression, against
// the paper's reported bars. Thin shim over the "fig1b-exit-accuracy"
// registry entry; `imx_sweep fig1b-exit-accuracy` runs the identical sweep.
//
// Usage: bench_fig1b_exit_accuracy [--quick] [--replicas N] [--threads N]
//                                  [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig1b-exit-accuracy", argc, argv);
}
