// Ablation A1 (DESIGN.md): robustness of the runtime to the EH environment —
// different power traces (daylight solar, full day with night gap, square
// wave, constant) and arrival processes (uniform, Poisson, bursty). Thin
// shim over the "ablation-trace" registry entry.
//
// Usage: bench_ablation_trace [--quick] [--replicas N] [--threads N]
//                             [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("ablation-trace", argc, argv);
}
