// Ablation A1 (DESIGN.md): robustness of the runtime to the EH environment —
// different power traces (daylight solar, full day with night gap, square
// wave, constant) and arrival processes (uniform, Poisson, bursty).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "energy/solar.hpp"

using namespace imx;

namespace {

core::ExperimentSetup with_trace(core::ExperimentSetup setup,
                                 energy::PowerTrace trace,
                                 std::uint64_t event_seed = 99) {
    trace.rescale_total_energy(281.5);
    setup.events = sim::generate_events(
        {500, trace.duration(), sim::ArrivalKind::kUniform, event_seed});
    setup.trace = std::move(trace);
    return setup;
}

}  // namespace

int main() {
    const auto base = core::make_paper_setup();

    util::Table t1("Ablation — power trace shape (same 281.5 mJ budget)");
    t1.header({"trace", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL", "lat QL"});
    struct TraceCase {
        const char* name;
        energy::PowerTrace trace;
    };
    energy::SolarConfig full_day;
    full_day.dt_s = 1.0;
    full_day.peak_power_mw = 0.08;
    full_day.time_compression = 86400.0 / 13000.0;  // includes the night gap
    TraceCase cases[] = {
        {"daylight solar (paper setup)", base.trace},
        {"full day incl. night", energy::make_solar_trace(full_day)},
        {"square wave 60s/50%",
         energy::PowerTrace::square_wave(0.05, 60.0, 0.5, 13000.0, 1.0)},
        {"constant power",
         energy::PowerTrace::constant(0.0217, 13000.0, 1.0)},
    };
    for (auto& c : cases) {
        const auto setup = with_trace(base, std::move(c.trace));
        const auto ql = bench::run_ours_qlearning(setup, 12);
        const auto lut = bench::run_ours_static(setup);
        t1.row({c.name, util::fixed(ql.iepmj(), 3), util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()),
                util::fixed(ql.mean_event_latency_s(), 1) + " s"});
    }
    t1.print(std::cout);

    util::Table t2("Ablation — event arrival process (daylight solar)");
    t2.header({"arrivals", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
    for (const auto kind : {sim::ArrivalKind::kUniform, sim::ArrivalKind::kPoisson,
                            sim::ArrivalKind::kBursty}) {
        auto setup = base;
        setup.events = sim::generate_events(
            {500, setup.trace.duration(), kind, 321});
        const auto ql = bench::run_ours_qlearning(setup, 12);
        const auto lut = bench::run_ours_static(setup);
        const char* name = kind == sim::ArrivalKind::kUniform  ? "uniform (paper)"
                           : kind == sim::ArrivalKind::kPoisson ? "Poisson"
                                                                : "bursty 2-5";
        t2.row({name, util::fixed(ql.iepmj(), 3), util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()) + "/" +
                    std::to_string(lut.processed_count())});
    }
    t2.print(std::cout);

    std::printf(
        "\nnotes: the night gap roughly halves IEpmJ for every policy (half "
        "the events arrive with no income and a small buffer); burstiness "
        "favors the learned policy, which holds reserve for followers.\n");
    return 0;
}
