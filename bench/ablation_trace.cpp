// Ablation A1 (DESIGN.md): robustness of the runtime to the EH environment —
// different power traces (daylight solar, full day with night gap, square
// wave, constant) and arrival processes (uniform, Poisson, bursty). Every
// environment is a TraceSpec on the exp:: grid's trace axis, so the whole
// ablation runs as one parallel sweep (quick mode shrinks the trace
// durations and event counts proportionally, like the fig* benches).
//
// Usage: bench_ablation_trace [--quick] [--replicas N] [--threads N]
//                             [--csv PATH]
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar.hpp"

using namespace imx;

namespace {

/// Swap the power trace under the deployed system: rescale to the canonical
/// harvest budget and regenerate the canonical event schedule over the new
/// trace's duration.
std::shared_ptr<const core::ExperimentSetup> with_trace(
    const core::ExperimentSetup& base, const core::SetupConfig& cfg,
    energy::PowerTrace trace, sim::ArrivalKind arrivals,
    std::uint64_t event_seed) {
    auto setup = std::make_shared<core::ExperimentSetup>(base);
    trace.rescale_total_energy(cfg.total_harvest_mj);
    setup->events = sim::generate_events(
        {cfg.event_count, trace.duration(), arrivals, event_seed});
    setup->trace = std::move(trace);
    return setup;
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    const auto setup_cfg = bench::bench_setup_config(options);
    const auto base = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(setup_cfg));
    const int episodes = bench::bench_episodes(options, 12);

    // Trace-shape axis (same harvest budget for every shape).
    energy::SolarConfig full_day;
    full_day.dt_s = 1.0;
    full_day.peak_power_mw = 0.08;
    full_day.time_compression = 86400.0 / setup_cfg.duration_s;  // night gap
    const char* trace_labels[] = {"daylight solar (paper setup)",
                                  "full day incl. night",
                                  "square wave 60s/50%", "constant power"};
    exp::PaperSweep shape_sweep;
    shape_sweep.traces = {
        {trace_labels[0],
         setup_cfg,
         with_trace(*base, setup_cfg, base->trace,
                    sim::ArrivalKind::kUniform, setup_cfg.event_seed)},
        {trace_labels[1],
         setup_cfg,
         with_trace(*base, setup_cfg, energy::make_solar_trace(full_day),
                    sim::ArrivalKind::kUniform, setup_cfg.event_seed)},
        {trace_labels[2],
         setup_cfg,
         with_trace(*base, setup_cfg,
                    energy::PowerTrace::square_wave(0.05, 60.0, 0.5,
                                                    setup_cfg.duration_s, 1.0),
                    sim::ArrivalKind::kUniform, setup_cfg.event_seed)},
        {trace_labels[3],
         setup_cfg,
         with_trace(*base, setup_cfg,
                    energy::PowerTrace::constant(0.0217, setup_cfg.duration_s,
                                                 1.0),
                    sim::ArrivalKind::kUniform, setup_cfg.event_seed)},
    };
    shape_sweep.systems = {
        {"Q-learning", exp::SystemKind::kOursQLearning, episodes, {}, ""},
        {"static LUT", exp::SystemKind::kOursStatic, 0, {}, ""}};
    shape_sweep.replicas = options.replicas;
    auto specs = exp::build_paper_scenarios(shape_sweep);

    // Arrival-process axis (daylight solar, fresh arrival seed 321).
    const struct {
        sim::ArrivalKind kind;
        const char* label;
    } arrival_cases[] = {{sim::ArrivalKind::kUniform, "uniform (paper)"},
                         {sim::ArrivalKind::kPoisson, "Poisson"},
                         {sim::ArrivalKind::kBursty, "bursty 2-5"}};
    exp::PaperSweep arrival_sweep;
    arrival_sweep.traces.clear();  // drop the default paper-solar spec
    for (const auto& c : arrival_cases) {
        auto setup = std::make_shared<core::ExperimentSetup>(*base);
        setup->events = sim::generate_events(
            {setup_cfg.event_count, base->trace.duration(), c.kind, 321});
        arrival_sweep.traces.push_back({c.label, setup_cfg, std::move(setup)});
    }
    arrival_sweep.systems = shape_sweep.systems;
    arrival_sweep.replicas = options.replicas;
    for (auto& spec : exp::build_paper_scenarios(arrival_sweep)) {
        specs.push_back(std::move(spec));
    }

    const auto outcomes = bench::run_and_report(specs, options);

    util::Table t1("Ablation — power trace shape (same " +
                   util::fixed(setup_cfg.total_harvest_mj, 1) +
                   " mJ budget)");
    t1.header({"trace", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL", "lat QL"});
    for (const char* label : trace_labels) {
        const auto& ql = bench::canonical_sim(
            specs, outcomes, std::string(label) + "/Q-learning");
        const auto& lut = bench::canonical_sim(
            specs, outcomes, std::string(label) + "/static LUT");
        t1.row({label, util::fixed(ql.iepmj(), 3), util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()),
                util::fixed(ql.mean_event_latency_s(), 1) + " s"});
    }
    t1.print(std::cout);

    util::Table t2("Ablation — event arrival process (daylight solar)");
    t2.header({"arrivals", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
    for (const auto& c : arrival_cases) {
        const auto& ql = bench::canonical_sim(
            specs, outcomes, std::string(c.label) + "/Q-learning");
        const auto& lut = bench::canonical_sim(
            specs, outcomes, std::string(c.label) + "/static LUT");
        t2.row({c.label, util::fixed(ql.iepmj(), 3),
                util::fixed(lut.iepmj(), 3),
                std::to_string(ql.processed_count()) + "/" +
                    std::to_string(lut.processed_count())});
    }
    t2.print(std::cout);

    std::printf(
        "\nnotes: the night gap roughly halves IEpmJ for every policy (half "
        "the events arrive with no income and a small buffer); burstiness "
        "favors the learned policy, which holds reserve for followers.\n");

    bench::print_replica_aggregate(specs, outcomes,
                                   {"iepmj", "processed", "event_latency_s"},
                                   options);
    return 0;
}
