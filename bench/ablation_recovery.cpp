// Power-failure ablation: recovery strategy (restart / checkpoint at layer
// or exit granularity / checkpoint-free) x harvesting source x deadline,
// with the failure-free runtime as the rec-none baseline. Thin shim over
// the "recovery-ablation" registry entry — the same grid is also
// expressible as a pure spec file, see
// examples/experiments/recovery_ablation.ini and docs/recovery.md.
//
// Usage: bench_ablation_recovery [--quick] [--replicas N] [--threads N]
//                                [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("recovery-ablation", argc, argv);
}
