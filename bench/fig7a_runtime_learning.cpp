// Reproduces Fig. 7a: the runtime adaptation learning curve — all-event
// accuracy per learning episode for Q-learning exit selection vs the static
// LUT policy's flat line. Thin shim over the "fig7a-runtime-learning"
// registry entry.
//
// Usage: bench_fig7a_runtime_learning [--quick] [--replicas N] [--threads N]
//                                     [--csv PATH] [--base-seed N]
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
    return imx::exp::experiment_main("fig7a-runtime-learning", argc, argv);
}
