// Reproduces Fig. 7a: the runtime adaptation learning curve — all-event
// accuracy per learning episode for Q-learning exit selection vs the static
// LUT policy's flat line. Both systems run as learning-curve scenarios
// through the exp:: engine; with --replicas N the per-episode curve points
// aggregate to mean ± 95% CI like every other metric.
//
// Usage: bench_fig7a_runtime_learning [--quick] [--replicas N] [--threads N]
//                                     [--csv PATH]
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto options = bench::parse_bench_options(argc, argv);
    exp::require_no_positional(options);

    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup(bench::bench_setup_config(options)));
    const exp::SystemSpec lut{"static LUT", exp::SystemKind::kOursStatic, 0,
                              {}, ""};
    const exp::SystemSpec learned{"Q-learning",
                                  exp::SystemKind::kOursQLearning,
                                  bench::bench_episodes(options, 16),
                                  {}, ""};

    std::vector<exp::ScenarioSpec> specs;
    for (int replica = 0; replica < options.replicas; ++replica) {
        specs.push_back(
            exp::make_learning_curve_scenario(setup, lut, "paper-solar",
                                              replica));
        specs.push_back(exp::make_learning_curve_scenario(
            setup, learned, "paper-solar", replica));
    }
    const auto outcomes = bench::run_and_report(specs, options);

    const auto& lut_sim =
        bench::canonical_sim(specs, outcomes, "paper-solar/static LUT");
    const double lut_acc = 100.0 * lut_sim.accuracy_all_events();

    const auto& learned_sim =
        bench::canonical_sim(specs, outcomes, "paper-solar/Q-learning");
    const double final_acc = 100.0 * learned_sim.accuracy_all_events();
    const auto& learned_metrics =
        bench::canonical_metrics(specs, outcomes, "paper-solar/Q-learning");
    std::vector<double> curve;
    for (const auto& [name, value] : learned_metrics) {
        // MetricMap is ordered and the keys are zero-padded, so this walks
        // the episodes in training order.
        if (name.rfind("curve_ep", 0) == 0) curve.push_back(value);
    }

    util::Table table("Fig. 7a — runtime learning curve (avg accuracy, %)");
    table.header({"episode", "Q-learning", "", "static LUT"});
    for (std::size_t ep = 0; ep < curve.size(); ++ep) {
        table.row({std::to_string(ep + 1), util::fixed(curve[ep], 1),
                   util::bar(curve[ep] - 30.0, 30.0, 30),
                   util::fixed(lut_acc, 1)});
    }
    table.row({"eval (greedy)", util::fixed(final_acc, 1),
               util::bar(final_acc - 30.0, 30.0, 30), util::fixed(lut_acc, 1)});
    table.print(std::cout);

    std::printf(
        "\nQ-learning final vs static LUT: %.1f%% vs %.1f%% -> %+.1f%% "
        "relative (paper: +10.2%%)\n",
        final_acc, lut_acc, 100.0 * (final_acc - lut_acc) / lut_acc);
    std::printf("learning curve start -> end: %.1f%% -> %.1f%%\n",
                curve.front(), curve.back());

    bench::print_replica_aggregate(specs, outcomes,
                                   {"acc_all_pct", "iepmj", "processed"},
                                   options);
    return 0;
}
