// Reproduces Fig. 7a: the runtime adaptation learning curve — all-event
// accuracy per learning episode for Q-learning exit selection vs the static
// LUT policy's flat line.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace imx;

int main() {
    const auto setup = core::make_paper_setup();

    const auto lut = bench::run_ours_static(setup);
    const double lut_acc = 100.0 * lut.accuracy_all_events();

    std::vector<double> curve;
    const auto learned = bench::run_ours_qlearning(setup, 16, &curve);
    const double final_acc = 100.0 * learned.accuracy_all_events();

    util::Table table("Fig. 7a — runtime learning curve (avg accuracy, %)");
    table.header({"episode", "Q-learning", "", "static LUT"});
    for (std::size_t ep = 0; ep < curve.size(); ++ep) {
        table.row({std::to_string(ep + 1), util::fixed(curve[ep], 1),
                   util::bar(curve[ep] - 30.0, 30.0, 30),
                   util::fixed(lut_acc, 1)});
    }
    table.row({"eval (greedy)", util::fixed(final_acc, 1),
               util::bar(final_acc - 30.0, 30.0, 30), util::fixed(lut_acc, 1)});
    table.print(std::cout);

    std::printf(
        "\nQ-learning final vs static LUT: %.1f%% vs %.1f%% -> %+.1f%% "
        "relative (paper: +10.2%%)\n",
        final_acc, lut_acc, 100.0 * (final_acc - lut_acc) / lut_acc);
    std::printf("learning curve start -> end: %.1f%% -> %.1f%%\n",
                curve.front(), curve.back());
    return 0;
}
