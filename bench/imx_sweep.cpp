// The universal sweep driver: runs any registered experiment by name or any
// declarative spec file, under the shared sweep CLI. Scenario growth is
// config authoring, not C++ — see docs/experiments.md for the spec schema.
//
// Usage: imx_sweep <name> [options]            run a registered experiment
//        imx_sweep --spec FILE [options]       run a spec-file experiment
//        imx_sweep --list                      list registered experiments
// Options: [--quick] [--replicas N] [--threads N] [--csv PATH]
//          [--base-seed N] [--shard i/N] [--journal PATH] [--resume]
//          [--merge PATH]... [--dry-run] [--profile]
// --dry-run prints the expanded scenario grid (id, seed, dims) without
// executing anything — CI uses it to validate every shipped spec cheaply;
// with --shard it prints only that shard's slice. --shard/--journal/
// --resume/--merge split a grid across processes and fold the per-shard
// journals back into the exact single-process aggregate output
// (docs/experiments.md, "Sharding, journals, and exact merge").
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/spec_parser.hpp"

using namespace imx;

namespace {

constexpr const char* kUsage =
    "usage: imx_sweep <name> [options]      run a registered experiment\n"
    "       imx_sweep --spec FILE [options] run a spec-file experiment\n"
    "       imx_sweep --list                list registered experiments\n"
    "options: [--quick] [--replicas N] [--threads N] [--csv PATH]\n"
    "         [--base-seed N] [--shard i/N] [--journal PATH] [--resume]\n"
    "         [--merge PATH]... [--dry-run] [--profile]\n";

int list_experiments() {
    // The four registry sections live in the library (exp::describe_all) so
    // every tool lists the world identically; only the usage hint is ours.
    exp::describe_all(stdout);
    std::printf(
        "\nrun one with `imx_sweep <name>`, or declare your own grid in a "
        "spec file (docs/experiments.md) and run `imx_sweep --spec FILE`.\n"
        "every grid shards deterministically: `--shard i/N --journal PATH` "
        "per slice,\nthen `--merge PATH...` folds the journals into the "
        "exact single-process output.\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    // Peel off the driver-only flags, then hand the rest to the shared
    // sweep CLI parser (which owns --quick/--replicas/--threads/--csv/
    // --base-seed and the hard-error policy for unknown flags).
    bool list = false;
    bool dry_run = false;
    std::string spec_path;
    std::vector<char*> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
        } else if (std::strcmp(argv[i], "--spec") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --spec requires a value\n");
                return 2;
            }
            spec_path = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (list) return list_experiments();

    auto options =
        exp::parse_sweep_cli(static_cast<int>(rest.size()), rest.data());

    try {
        exp::Experiment experiment;
        if (!spec_path.empty()) {
            experiment.spec = exp::load_experiment_spec(spec_path);
        } else {
            if (options.positional.empty()) {
                std::fputs(kUsage, stderr);
                return 2;
            }
            const std::string name = options.positional.front();
            // The name is consumed here; remaining positionals belong to
            // the experiment (e.g. an episode count).
            options.positional.erase(options.positional.begin());
            experiment = exp::make_experiment(name);
        }
        if (dry_run) {
            auto specs = exp::build_experiment_scenarios(experiment, options);
            if (options.shard_given) {
                // Show exactly what this shard would run, so the printed
                // scenario count matches the sharded execution.
                std::vector<exp::ScenarioSpec> slice;
                for (const std::size_t i :
                     exp::shard_indices(specs.size(), options.shard)) {
                    slice.push_back(std::move(specs[i]));
                }
                specs = std::move(slice);
            }
            exp::print_scenario_grid(specs, std::cout);
            return 0;
        }
        return exp::run_experiment(experiment, options);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
