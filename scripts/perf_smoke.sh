#!/usr/bin/env bash
# Release perf smoke: time imx_sweep on representative grids and emit a
# BENCH_sweep.json so CI's artifact trail tracks a scenarios/second
# trajectory over time (grid label, wall seconds, scenario count, rate).
#
# Usage: scripts/perf_smoke.sh [BUILD_DIR] [OUTPUT_JSON] [PROFILE_JSON]
#   BUILD_DIR    defaults to "build"
#   OUTPUT_JSON  defaults to "BENCH_sweep.json"
#   PROFILE_JSON defaults to "BENCH_profile.json"
#
# After the timed cases, one grid is re-run under --profile to attribute
# hot-path time to the five simulator phases (docs/profiling.md). The
# breakdown is written to PROFILE_JSON (uploaded by CI next to OUTPUT_JSON)
# and embedded into OUTPUT_JSON as "profile" so the committed baseline
# carries phase shares for scripts/perf_trend.py's drift warning.
#
# Runs in quick mode so a CI lane finishes in seconds; the numbers are for
# trend lines (regressions of 2x show up clearly), not for microbenchmark
# precision — bench/micro_* owns that.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_sweep.json}
PROFILE_OUT=${3:-BENCH_profile.json}
SWEEP="$BUILD_DIR/imx_sweep"
SPEC_DIR="$(cd "$(dirname "$0")/.." && pwd)/examples/experiments"

if [ ! -x "$SWEEP" ]; then
    echo "error: $SWEEP is not built (run cmake --build $BUILD_DIR first)" >&2
    exit 1
fi

commit=${GITHUB_SHA:-$(git -C "$(dirname "$0")/.." rev-parse HEAD 2>/dev/null || echo unknown)}
# Recorded so scripts/perf_trend.py can normalize rates per core when the
# baseline and the current run come from differently sized hosts.
host_cores=$(nproc 2>/dev/null || echo 1)
entries=""

run_case() {
    local label=$1
    shift
    # The scenario count comes from the same expansion the timed run uses.
    local scenarios
    scenarios=$("$SWEEP" "$@" --dry-run | awk '/scenario\(s\)$/ {print $1}')
    if [ -z "$scenarios" ]; then
        echo "error: could not count scenarios for $label" >&2
        exit 1
    fi
    # Best of 3: on a shared CI runner the minimum wall time is the least
    # noisy estimator of the achievable rate (scripts/perf_trend.py gates
    # on these numbers).
    local t0 t1 wall="" cand rate rep
    for rep in 1 2 3; do
        t0=$(date +%s.%N)
        "$SWEEP" "$@" > /dev/null
        t1=$(date +%s.%N)
        cand=$(awk -v a="$t0" -v b="$t1" 'BEGIN {printf "%.3f", b - a}')
        if [ -z "$wall" ] || \
           awk -v a="$cand" -v b="$wall" 'BEGIN {exit !(a < b)}'; then
            wall=$cand
        fi
    done
    rate=$(awk -v s="$scenarios" -v w="$wall" \
               'BEGIN {printf "%.3f", (w > 0 ? s / w : 0)}')
    echo "  $label: ${wall} s for $scenarios scenario(s) -> $rate/s"
    entries+="${entries:+,}"
    entries+=$'\n'"    {\"grid\": \"$label\", \"wall_seconds\": $wall,"
    entries+=" \"scenarios\": $scenarios, \"scenarios_per_sec\": $rate}"
}

echo "imx_sweep perf smoke ($SWEEP):"
run_case "fig5-iepmj (--quick --replicas 2)" \
         fig5-iepmj --quick --replicas 2
run_case "latency-table (--quick --replicas 2)" \
         latency-table --quick --replicas 2
run_case "harvester_ablation.ini (--quick)" \
         --spec "$SPEC_DIR/harvester_ablation.ini" --quick
# The failure-model hot path: simulator steps with the recovery branch
# live, across all built-in strategies.
run_case "recovery-ablation (--quick)" \
         recovery-ablation --quick
# The queue hot path: bounded-queue bookkeeping + percentile collection
# live on every cell, across all four arrival sources.
run_case "traffic_ablation.ini (--quick)" \
         --spec "$SPEC_DIR/traffic_ablation.ini" --quick
# Shard mode: same grid, half the specs, journal streaming on — tracks the
# per-shard overhead of shard selection + journaling against the unsharded
# trend line above.
run_case "fig5-iepmj shard 0/2 (--quick --replicas 2 --shard 0/2 --journal)" \
         fig5-iepmj --quick --replicas 2 --shard 0/2 \
         --journal "$BUILD_DIR/perf_shard0.jsonl"

# Phase attribution (docs/profiling.md): one profiled quick grid. Not a
# run_case — profiling hooks add clock reads, so this wall time is not
# comparable to the unprofiled trend lines above. imx_sweep writes the
# breakdown to ./BENCH_profile.json; relocate it if the caller asked for a
# different path.
echo "  harvester_ablation.ini (--quick --profile) -> $PROFILE_OUT"
"$SWEEP" --spec "$SPEC_DIR/harvester_ablation.ini" --quick --profile \
    > /dev/null
if [ "$PROFILE_OUT" != "BENCH_profile.json" ]; then
    mv BENCH_profile.json "$PROFILE_OUT"
fi
profile=$(cat "$PROFILE_OUT")

printf '{\n  "bench": "imx_sweep perf smoke",\n  "commit": "%s",\n  "host_cores": %s,\n  "profile": %s,\n  "results": [%s\n  ]\n}\n' \
       "$commit" "$host_cores" "$profile" "$entries" > "$OUT"
echo "wrote $OUT"
