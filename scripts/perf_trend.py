#!/usr/bin/env python3
"""Perf trend gate for the Release perf-smoke lane.

Compares a freshly produced BENCH_sweep.json (scripts/perf_smoke.sh) against
the committed baseline (scripts/perf_baseline.json) and fails when any grid's
scenarios/sec drops by more than --factor (default 2.0: the smoke numbers are
trend lines, not microbenchmarks, so only a halving is actionable signal).

Rates are normalized per host core (the ``host_cores`` field each file
carries) so a baseline captured on a 1-core container and a current run on a
wider CI runner stay comparable. A grid present in the baseline but missing
from the current run is a failure too — silently dropping a grid would hide
its regressions. New grids pass with a note.

After an intentional perf change, refresh the baseline with:
    scripts/perf_smoke.sh build BENCH_sweep.json
    python3 scripts/perf_trend.py --update-baseline
and commit the updated scripts/perf_baseline.json.

Stdlib only; exit code 0 = gate passed, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import shutil
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"


def load_rates(path):
    """Return (document, {grid: per-core scenarios/sec})."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    cores = max(1, int(doc.get("host_cores", 1)))
    rates = {}
    for row in doc.get("results", []):
        rates[row["grid"]] = float(row["scenarios_per_sec"]) / cores
    if not rates:
        raise ValueError(f"{path}: no results entries")
    return doc, rates


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when BENCH_sweep.json regresses vs the baseline."
    )
    parser.add_argument(
        "--current",
        default="BENCH_sweep.json",
        help="fresh perf-smoke output (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when baseline/current exceeds this (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy --current over --baseline and exit",
    )
    args = parser.parse_args(argv)

    if args.factor <= 1.0:
        print(f"error: --factor must be > 1.0, got {args.factor}",
              file=sys.stderr)
        return 2

    if args.update_baseline:
        try:
            load_rates(args.current)  # refuse to install a malformed baseline
        except (OSError, ValueError, KeyError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    try:
        base_doc, base = load_rates(args.baseline)
        cur_doc, cur = load_rates(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    print(
        f"perf trend gate: fail below 1/{args.factor:g}x of baseline "
        f"(per-core rates; baseline host_cores="
        f"{base_doc.get('host_cores', 1)} @ "
        f"{base_doc.get('commit', 'unknown')[:12]}, current host_cores="
        f"{cur_doc.get('host_cores', 1)})"
    )
    failures = []
    width = max(len(g) for g in set(base) | set(cur))
    for grid in sorted(base):
        if grid not in cur:
            failures.append(f"grid missing from current run: {grid!r}")
            print(f"  {grid:<{width}}  MISSING from current run")
            continue
        speedup = cur[grid] / base[grid]
        regressed = speedup < 1.0 / args.factor
        verdict = "REGRESSION" if regressed else "ok"
        print(
            f"  {grid:<{width}}  baseline {base[grid]:10.1f}/s  "
            f"current {cur[grid]:10.1f}/s  x{speedup:.2f}  {verdict}"
        )
        if regressed:
            failures.append(
                f"{grid!r}: {cur[grid]:.1f}/s is below "
                f"{base[grid] / args.factor:.1f}/s "
                f"(baseline {base[grid]:.1f}/s / factor {args.factor:g})"
            )
    for grid in sorted(set(cur) - set(base)):
        print(f"  {grid:<{width}}  NEW grid ({cur[grid]:.1f}/s) — "
              "add it to the baseline with --update-baseline")

    if failures:
        print("perf trend gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf trend gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
