#!/usr/bin/env python3
"""Perf trend gate for the Release perf-smoke lane.

Compares a freshly produced BENCH_sweep.json (scripts/perf_smoke.sh) against
the committed baseline (scripts/perf_baseline.json) and fails when any grid's
scenarios/sec drops by more than --factor (default 2.0: the smoke numbers are
trend lines, not microbenchmarks, so only a halving is actionable signal).

Rates are normalized per host core (the ``host_cores`` field each file
carries) so a baseline captured on a 1-core container and a current run on a
wider CI runner stay comparable. A grid present in the baseline but missing
from the current run is a failure too — silently dropping a grid would hide
its regressions. New grids pass with a note.

When both files carry a ``profile`` object (the per-phase breakdown
perf_smoke.sh embeds from the --profile run, docs/profiling.md), phase
*shares* are compared as well: a phase whose share of total hot-path time
drifts by more than --phase-factor (default 2.0, either direction) prints a
warning naming the phase. Warnings never fail the gate — shares shift
legitimately across hosts — but they localize a whole-grid regression to a
subsystem before anyone bisects.

After an intentional perf change, refresh the baseline with:
    scripts/perf_smoke.sh build BENCH_sweep.json
    python3 scripts/perf_trend.py --update-baseline
and commit the updated scripts/perf_baseline.json.

Stdlib only; exit code 0 = gate passed, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import shutil
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"


def load_rates(path):
    """Return (document, {grid: per-core scenarios/sec})."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    cores = max(1, int(doc.get("host_cores", 1)))
    rates = {}
    for row in doc.get("results", []):
        rates[row["grid"]] = float(row["scenarios_per_sec"]) / cores
    if not rates:
        raise ValueError(f"{path}: no results entries")
    return doc, rates


def compare_phase_shares(base_doc, cur_doc, factor):
    """Warn (never fail) when a profiled phase's time share drifts.

    Shares, not absolute ns: wall time varies with the host, but the split
    of hot-path time across harvest/queue/policy/inference/commit is a
    property of the code. A phase drifting past ``factor`` either way is
    the bisect hint the whole-grid scalar cannot give.
    """
    base_profile = base_doc.get("profile", {}).get("phases")
    cur_profile = cur_doc.get("profile", {}).get("phases")
    if not base_profile or not cur_profile:
        missing = "baseline" if not base_profile else "current run"
        print(f"  (no phase profile in the {missing}; share check skipped)")
        return
    print(f"phase shares (warn past x{factor:g} drift either way):")
    for phase in sorted(set(base_profile) | set(cur_profile)):
        base_share = float(base_profile.get(phase, {}).get("share", 0.0))
        cur_share = float(cur_profile.get(phase, {}).get("share", 0.0))
        note = ""
        # Phases under 1% of either run are noise — a 5x drift of nothing
        # is still nothing.
        significant = max(base_share, cur_share) >= 0.01
        if significant and (
            cur_share > base_share * factor or base_share > cur_share * factor
        ):
            note = "  WARNING: share drifted — likely regression locus"
        print(
            f"  {phase:<10}  baseline {base_share * 100:5.1f}%  "
            f"current {cur_share * 100:5.1f}%{note}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when BENCH_sweep.json regresses vs the baseline."
    )
    parser.add_argument(
        "--current",
        default="BENCH_sweep.json",
        help="fresh perf-smoke output (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when baseline/current exceeds this (default: %(default)s)",
    )
    parser.add_argument(
        "--phase-factor",
        type=float,
        default=2.0,
        help="warn when a profile phase's share drifts by more than this "
        "factor either way (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy --current over --baseline and exit",
    )
    args = parser.parse_args(argv)

    if args.factor <= 1.0:
        print(f"error: --factor must be > 1.0, got {args.factor}",
              file=sys.stderr)
        return 2

    if args.update_baseline:
        try:
            load_rates(args.current)  # refuse to install a malformed baseline
        except (OSError, ValueError, KeyError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    try:
        base_doc, base = load_rates(args.baseline)
        cur_doc, cur = load_rates(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    print(
        f"perf trend gate: fail below 1/{args.factor:g}x of baseline "
        f"(per-core rates; baseline host_cores="
        f"{base_doc.get('host_cores', 1)} @ "
        f"{base_doc.get('commit', 'unknown')[:12]}, current host_cores="
        f"{cur_doc.get('host_cores', 1)})"
    )
    failures = []
    width = max(len(g) for g in set(base) | set(cur))
    for grid in sorted(base):
        if grid not in cur:
            failures.append(f"grid missing from current run: {grid!r}")
            print(f"  {grid:<{width}}  MISSING from current run")
            continue
        speedup = cur[grid] / base[grid]
        regressed = speedup < 1.0 / args.factor
        verdict = "REGRESSION" if regressed else "ok"
        print(
            f"  {grid:<{width}}  baseline {base[grid]:10.1f}/s  "
            f"current {cur[grid]:10.1f}/s  x{speedup:.2f}  {verdict}"
        )
        if regressed:
            failures.append(
                f"{grid!r}: {cur[grid]:.1f}/s is below "
                f"{base[grid] / args.factor:.1f}/s "
                f"(baseline {base[grid]:.1f}/s / factor {args.factor:g})"
            )
    for grid in sorted(set(cur) - set(base)):
        print(f"  {grid:<{width}}  NEW grid ({cur[grid]:.1f}/s) — "
              "add it to the baseline with --update-baseline")

    compare_phase_shares(base_doc, cur_doc, args.phase_factor)

    if failures:
        print("perf trend gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf trend gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
